#include "runtime/engine.hpp"

#include <algorithm>

#include "runtime/fingerprint.hpp"

namespace acs::runtime {

template <class T>
Engine<T>::Engine(EngineConfig config)
    : config_(config), cache_(config.plan_cache_capacity) {
  unsigned n = config_.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { work_loop(); });
}

template <class T>
Engine<T>::~Engine() {
  wait_all();
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

template <class T>
JobHandle<T> Engine<T>::submit(Csr<T> a, Csr<T> b, Config cfg) {
  auto state = std::make_shared<detail::JobState<T>>();
  state->a = std::move(a);
  state->b = std::move(b);
  state->cfg = cfg;
  {
    std::lock_guard<std::mutex> lock(m_);
    state->seq = stats_.jobs_submitted;
    queue_.push_back(state);
    ++in_flight_;
    ++stats_.jobs_submitted;
  }
  work_cv_.notify_one();
  return JobHandle<T>(std::move(state));
}

template <class T>
std::vector<JobResult<T>> Engine<T>::multiply_batch(
    const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs, const Config& cfg) {
  std::vector<JobHandle<T>> handles;
  handles.reserve(pairs.size());
  for (const auto& [a, b] : pairs) handles.push_back(submit(a, b, cfg));
  std::vector<JobResult<T>> results;
  results.reserve(handles.size());
  for (auto& h : handles) {
    // Not h.result(): that rethrows, which would abandon the remaining
    // handles' results. Failures travel on JobResult::error instead.
    h.wait();
    results.push_back(std::move(h.state_->result));
  }
  return results;
}

template <class T>
void Engine<T>::wait_all() {
  std::unique_lock<std::mutex> lock(m_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

template <class T>
EngineStats Engine<T>::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

template <class T>
trace::MetricsSnapshot Engine<T>::metrics() const {
  std::lock_guard<std::mutex> lock(m_);
  return metrics_;
}

template <class T>
void Engine<T>::work_loop() {
  WorkerContext ctx;
  for (;;) {
    std::shared_ptr<detail::JobState<T>> job;
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      run_job(*job, ctx);
    } catch (...) {
      // run_job failed outside its own handler (e.g. an allocation while
      // publishing the result). Fail this job only — never the worker: an
      // escaped exception here would leave in_flight_ stuck above zero and
      // wedge wait_all() and the destructor. complete() is idempotent, so
      // re-completing a job that already published is a no-op.
      std::exception_ptr e = std::current_exception();
      {
        std::lock_guard<std::mutex> lock(m_);
        ++stats_.jobs_completed;
        ++stats_.jobs_failed;
      }
      JobResult<T> failed;
      failed.error = e;
      job->complete(std::move(failed), e);
    }
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

template <class T>
void Engine<T>::run_job(detail::JobState<T>& job, WorkerContext& ctx) {
  JobResult<T> result;
  std::exception_ptr error;
  bool leased = false;
  typename PoolArena::Lease lease;
  // One session per job so its counters are the job's alone; a session the
  // caller installed on the Config is left in place (and stays theirs —
  // per-job counters cannot be split out of a shared session).
  std::shared_ptr<trace::TraceSession> session;
  if (config_.collect_job_traces && job.cfg.trace == nullptr) {
    session = std::make_shared<trace::TraceSession>();
    job.cfg.trace = session.get();
  }
  // Per-job fault injection, keyed by submission order so a given job gets
  // the same policy regardless of which worker picks it up. A policy the
  // submitter installed on the job's Config takes precedence.
  std::unique_ptr<AllocationPolicy> injected_policy;
  if (config_.make_alloc_policy && job.cfg.alloc_policy == nullptr) {
    injected_policy = config_.make_alloc_policy(job.seq);
    job.cfg.alloc_policy = injected_policy.get();
  }
  try {
    const Fingerprint key = fingerprint(job.a, job.b);
    SpgemmPlan plan;
    const bool hit = config_.use_plan_cache && cache_.lookup(key, plan);

    std::size_t want = plan.pool_bytes
                           ? plan.pool_bytes
                           : estimate_chunk_pool_bytes(job.a, job.b, job.cfg);
    if (config_.use_pool_arena) {
      lease = arena_.acquire(want);
      leased = true;
      want = lease.bytes;
    }
    plan.pool_bytes = want;

    if (!ctx.scheduler || ctx.scheduler_threads != job.cfg.scheduler_threads) {
      ctx.scheduler =
          std::make_unique<sim::BlockScheduler>(job.cfg.scheduler_threads);
      ctx.scheduler_threads = job.cfg.scheduler_threads;
    }

    result.c = multiply_planned(job.a, job.b, job.cfg, plan, &result.stats,
                                ctx.scheduler.get());
    result.plan_hit = hit;
    result.pool_reused_bytes = lease.reused_bytes;
    result.metrics = to_metrics_snapshot(result.stats);
    if (session) {
      result.metrics.counters = session->counters_snapshot();
      result.trace = session;
    }

    if (leased) {
      // The final capacity (including restart growth) becomes the slab.
      arena_.release(result.stats.pool_bytes);
      leased = false;
    }
    if (config_.use_plan_cache) cache_.store(key, std::move(plan));
  } catch (...) {
    error = std::current_exception();
    if (leased) arena_.release(lease.bytes);
    result = JobResult<T>{};  // drop any partially-filled output
    result.error = error;
  }

  {
    std::lock_guard<std::mutex> lock(m_);
    ++stats_.jobs_completed;
    if (error) ++stats_.jobs_failed;
    stats_.restarts += static_cast<std::size_t>(
        std::max(0, result.stats.restarts));
    if (!error) metrics_ += result.metrics;
  }
  job.complete(std::move(result), error);
}

template class Engine<float>;
template class Engine<double>;

}  // namespace acs::runtime
