#include "runtime/plan_cache.hpp"

#include <algorithm>
#include <utility>

namespace acs::runtime {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool PlanCache::lookup(const Fingerprint& key, SpgemmPlan& plan) {
  acs::MutexLock lock(m_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  plan = it->second->plan;
  ++counters_.hits;
  return true;
}

void PlanCache::apply_upgrade_locked(SpgemmPlan& plan, const Upgrade& up) {
  if (!(plan.tuned == up.tuned)) {
    // The load-balancing table and learned pool size were built for the
    // superseded overlay; the next run rebuilds and re-learns.
    plan.tuned = up.tuned;
    plan.block_row_starts.clear();
    plan.pool_bytes = 0;
    plan.observed_pool_used = 0;
  }
  plan.measured_products = up.measured_products;
  plan.feedback_runs = std::max<std::uint32_t>(plan.feedback_runs, 1);
}

void PlanCache::store(const Fingerprint& key, SpgemmPlan plan) {
  acs::MutexLock lock(m_);
  // A recorded upgrade outranks whatever tune state the caller carries:
  // the plan may have been looked up before the re-tune landed.
  if (const auto up = upgrades_.find(key); up != upgrades_.end())
    apply_upgrade_locked(plan, up->second);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->plan = std::move(plan);
    ++counters_.refreshes;
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_.emplace(key, lru_.begin());
  ++counters_.insertions;
  while (lru_.size() > capacity_) {
    upgrades_.erase(lru_.back().key);
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

bool PlanCache::upgrade_tuned(const Fingerprint& key,
                              const TunedParams& refined,
                              offset_t measured_products) {
  acs::MutexLock lock(m_);
  const Upgrade up{refined, measured_products};
  upgrades_[key] = up;
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  apply_upgrade_locked(it->second->plan, up);
  return true;
}

std::vector<PlanCache::TunedEntry> PlanCache::tuned_entries() const {
  acs::MutexLock lock(m_);
  std::vector<TunedEntry> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_)
    if (e.plan.tuned.valid)
      out.push_back(TunedEntry{e.key, e.plan.tuned, e.plan.measured_products});
  return out;
}

PlanCache::Counters PlanCache::counters() const {
  acs::MutexLock lock(m_);
  return counters_;
}

std::size_t PlanCache::size() const {
  acs::MutexLock lock(m_);
  return lru_.size();
}

void PlanCache::clear() {
  acs::MutexLock lock(m_);
  lru_.clear();
  index_.clear();
  upgrades_.clear();
  counters_ = Counters{};
}

}  // namespace acs::runtime
