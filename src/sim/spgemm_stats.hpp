#pragma once
/// \file spgemm_stats.hpp
/// Execution statistics shared by every SpGEMM implementation in the
/// repository. This is the instrumentation the paper's evaluation tables are
/// built from: simulated time / GFLOPS (Figs. 5–6, 9–12), per-stage times
/// (Fig. 7), memory consumption and restarts (Table 3, Fig. 8) and
/// multiprocessor load (Table 3).

#include <string>
#include <utility>
#include <vector>

#include "matrix/types.hpp"
#include "sim/metrics.hpp"
#include "trace/metrics.hpp"

namespace acs {

struct SpgemmStats {
  /// Aggregate work counters over all simulated kernels.
  sim::MetricCounters metrics;
  /// Total simulated execution time (all kernel launches + restarts).
  double sim_time_s = 0.0;
  /// Host wall-clock time of the simulation itself (not a paper metric, but
  /// useful for harness sanity checks).
  double wall_time_s = 0.0;
  /// Lowest multiprocessor load over the substantive kernels (Table 3 "mpL").
  double multiprocessor_load = 1.0;
  /// Host round trips due to chunk-pool exhaustion (Table 3 "R").
  int restarts = 0;
  /// Blocks denied a chunk-pool allocation, summed over restart rounds —
  /// real exhaustion and injected faults (core/chunk.hpp AllocationPolicy)
  /// alike. Nonzero pool_denials with zero restarts is impossible.
  std::size_t pool_denials = 0;
  /// Helper data structures in bytes (Table 3 "helper").
  std::size_t helper_bytes = 0;
  /// Allocated chunk-pool / temporary-buffer bytes (Table 3 "chunk").
  std::size_t pool_bytes = 0;
  /// Actually used pool bytes (Table 3 "used").
  std::size_t pool_used_bytes = 0;
  /// Initial pool sizing this run started from — the reused plan's learned
  /// size or the cold estimator's output (`estimate_chunk_pool_bytes`).
  /// Compare against pool_used_bytes to observe estimate error per job.
  std::size_t pool_estimate_bytes = 0;
  /// Intermediate products of the multiplication (2 FLOPs each).
  offset_t intermediate_products = 0;
  /// Simulated time per pipeline stage, in execution order (Fig. 7).
  std::vector<std::pair<std::string, double>> stage_times_s;

  // --- AC-SpGEMM pipeline observability (zero for the baselines). --------
  /// Chunks written to the pool (including merge outputs).
  std::size_t chunks_created = 0;
  /// Total local ESC iterations over all blocks.
  std::size_t esc_iterations = 0;
  /// Long rows of B turned into pointer chunks (Section 3.4).
  std::size_t long_row_chunks = 0;
  /// Rows shared between chunks that required merging.
  std::size_t merged_rows = 0;
  /// Global load balancing was satisfied from a reused SpgemmPlan instead of
  /// a fresh Algorithm 1 pass (see core/plan.hpp).
  bool glb_reused = false;

  /// GFLOPS at the simulated time, using the 2-flops-per-product convention.
  [[nodiscard]] double gflops() const {
    if (sim_time_s <= 0.0) return 0.0;
    return 2.0 * static_cast<double>(intermediate_products) / sim_time_s / 1e9;
  }

  /// Simulated time attributed to `stage` (0 if the stage never ran).
  [[nodiscard]] double stage_time(const std::string& stage) const {
    double t = 0.0;
    for (const auto& [name, s] : stage_times_s)
      if (name == stage) t += s;
    return t;
  }
};

/// One run's stats as an aggregatable metrics snapshot (jobs = 1). The
/// canonical stage times come straight from `stage_times_s`; the trace
/// counter block stays zero — merge a live `trace::TraceSession`'s counters
/// on top when tracing was enabled for the run.
[[nodiscard]] trace::MetricsSnapshot to_metrics_snapshot(const SpgemmStats& s);

}  // namespace acs
