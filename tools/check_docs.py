#!/usr/bin/env python3
"""Documentation drift checks (CI docs job; stdlib only).

1. Markdown link check: every relative link target in the repo's *.md
   files must exist on disk (anchors and external URLs are skipped).
2. Config/EngineConfig drift check, both directions:
   * every `Config`/`EngineConfig` member named in README.md, DESIGN.md or
     docs/ARCHITECTURE.md — via ``Struct::field`` references or a row of
     the README parameter tables — must still exist in the headers
     (src/core/config.hpp, src/runtime/engine.hpp), so renames/removals
     cannot leave stale docs behind;
   * every field of the two structs must appear in README.md, so new
     knobs cannot ship undocumented.
3. Change-log completeness: CHANGES.md carries one `- PR <n> ·` entry per
   merged PR, numbered contiguously from 1 (newest last); when the full
   git history is available the entry count is cross-checked against the
   number of PR commits on the branch (shallow CI clones skip only the
   git cross-check, never the structural one).
4. Architecture-map completeness: every directory under src/ must be
   named (as `src/<dir>`) in docs/ARCHITECTURE.md, so new subsystems
   cannot ship without a place in the layer map.
5. Backend-table completeness: every architecture tag compiled into
   src/arch/ (a struct carrying `static constexpr ArchId kId`) must be
   listed in docs/BACKENDS.md — both the tag type and its `kName`
   spelling — so a new backend cannot ship without its row in the
   porting guide.
6. Mutex-table completeness: every mutex registered in
   tools/lint/lock_order.toml (which the `lock-order` lint rule holds in
   sync with the annotated tree) must appear, with its rank, in the
   DESIGN.md §14 concurrency-contracts table — and every table row must
   name a registered mutex — so a new mutex cannot ship undocumented and
   the documented ranks cannot drift from the enforced ones.

Exit code 0 = docs in sync; 1 = drift, with one line per finding.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "DESIGN.md", "docs/ARCHITECTURE.md"]
SKIP_DIRS = {"build", "build-asan", "build-tsan", ".git"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REF_RE = re.compile(r"`(Config|EngineConfig)::(\w+)`")
TABLE_ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|")


def parse_struct_members(header: Path, struct_name: str) -> set[str]:
    """Member fields and methods of `struct <name> {...};` (brace-counted)."""
    text = header.read_text()
    start = text.find(f"struct {struct_name} {{")
    if start < 0:
        sys.exit(f"error: struct {struct_name} not found in {header}")
    depth = 0
    body_lines: list[str] = []
    for line in text[start:].splitlines():
        depth += line.count("{") - line.count("}")
        body_lines.append(line)
        if depth == 0 and body_lines[1:]:
            break
    members: set[str] = set()
    for line in body_lines[1:]:
        stripped = line.split("//")[0].strip()
        # methods:  [[nodiscard]] int temp_capacity() const { ... }
        m = re.match(r"(?:\[\[nodiscard\]\]\s*)?[\w:<>,\s*&]+?\b(\w+)\s*\(",
                     stripped)
        if m and not stripped.startswith(("if", "for", "return", "friend")):
            members.add(m.group(1))
            continue
        # fields:   int threads = 256;   sim::DeviceConfig device{};
        m = re.match(r"[\w:<>,\s*&]+?\b(\w+)\s*(?:=[^;]*|\{\s*\})?;$", stripped)
        if m:
            members.add(m.group(1))
            continue
        # continuation line of a multi-line declaration:  make_alloc_policy;
        m = re.match(r"^(\w+)\s*;$", stripped)
        if m:
            members.add(m.group(1))
    return members


def doc_field_references(path: Path) -> list[tuple[str, str, int]]:
    """(struct, field, line) references found in one doc file."""
    refs: list[tuple[str, str, int]] = []
    current_table: str | None = None
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for struct, field in REF_RE.findall(line):
            refs.append((struct, field, lineno))
        # README parameter tables: track which struct the table documents.
        if "`acs::Config`" in line or "(`acs::Config`" in line:
            current_table = "Config"
        elif "EngineConfig" in line and "`acs::runtime::EngineConfig`" in line:
            current_table = "EngineConfig"
        elif line.startswith("## ") or line.startswith("**"):
            pass  # section prose does not end a table by itself
        m = TABLE_ROW_RE.match(line)
        if m and current_table and m.group(1) not in ("field",):
            refs.append((current_table, m.group(1), lineno))
        if current_table and line.strip() == "" and refs and \
                TABLE_ROW_RE.match(line) is None and \
                any(r[2] == lineno - 1 and r[0] == current_table
                    for r in refs):
            current_table = None  # blank line after table rows ends the table
    return refs


def check_links() -> list[str]:
    errors = []
    for md in sorted(REPO.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(REPO).parts):
            continue
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (md.parent / target.split("#")[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}")
    return errors


def check_drift() -> list[str]:
    errors = []
    members = {
        "Config": parse_struct_members(REPO / "src/core/config.hpp", "Config"),
        "EngineConfig": parse_struct_members(
            REPO / "src/runtime/engine.hpp", "EngineConfig"),
    }
    documented: dict[str, set[str]] = {"Config": set(), "EngineConfig": set()}
    for rel in DOC_FILES:
        path = REPO / rel
        if not path.exists():
            errors.append(f"{rel}: required doc file missing")
            continue
        for struct, field, lineno in doc_field_references(path):
            documented[struct].add(field)
            if field not in members[struct]:
                errors.append(
                    f"{rel}:{lineno}: documents {struct}::{field}, which no "
                    f"longer exists in the header")
    # Completeness: every real field must be documented in the README tables.
    readme_refs = {f for _, f, _ in doc_field_references(REPO / "README.md")}
    for struct, fields in members.items():
        for field in sorted(fields):
            if field not in readme_refs and field not in documented[struct]:
                errors.append(
                    f"README.md: {struct}::{field} exists in the header but "
                    f"is documented nowhere")
    return errors


CHANGES_ENTRY_RE = re.compile(r"^- PR (\d+) ·")
PR_SUBJECT_RE = re.compile(r"^PR (\d+):")


def merged_pr_floor() -> int | None:
    """Highest PR number visible in git subjects, or None when unknowable.

    The branch history is the source of truth for what merged, but CI
    checkouts are often shallow (fetch-depth 1) and some PR subjects do
    not carry a `PR <n>:` prefix, so this is a lower bound used as a
    floor — never an exact count.
    """
    try:
        shallow = subprocess.run(
            ["git", "rev-parse", "--is-shallow-repository"],
            cwd=REPO, capture_output=True, text=True, check=True)
        if shallow.stdout.strip() == "true":
            return None
        log = subprocess.run(
            ["git", "log", "--format=%s"],
            cwd=REPO, capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    prs = [int(m.group(1))
           for m in map(PR_SUBJECT_RE.match, log.stdout.splitlines()) if m]
    return max(prs, default=0) or None


def check_changes() -> list[str]:
    """CHANGES.md: one `- PR <n> ·` entry per merged PR, 1..N in order."""
    path = REPO / "CHANGES.md"
    if not path.exists():
        return ["CHANGES.md: required change log missing"]
    errors = []
    numbers: list[int] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.startswith("- ") and not CHANGES_ENTRY_RE.match(line):
            errors.append(
                f"CHANGES.md:{lineno}: entry does not follow the "
                f"'- PR <n> · <area> — ...' format")
            continue
        m = CHANGES_ENTRY_RE.match(line)
        if m:
            numbers.append(int(m.group(1)))
    if numbers != list(range(1, len(numbers) + 1)):
        errors.append(
            f"CHANGES.md: entries must be numbered contiguously from PR 1, "
            f"newest last (found {numbers})")
    floor = merged_pr_floor()
    if floor is not None and (not numbers or numbers[-1] < floor):
        errors.append(
            f"CHANGES.md: git history shows PR {floor} merged but the "
            f"newest entry is PR {numbers[-1] if numbers else 0} — add a "
            f"line for every merged PR")
    return errors


def check_architecture_dirs() -> list[str]:
    """docs/ARCHITECTURE.md must name every directory under src/."""
    arch = REPO / "docs/ARCHITECTURE.md"
    if not arch.exists():
        return ["docs/ARCHITECTURE.md: required doc file missing"]
    text = arch.read_text()
    errors = []
    for d in sorted(p for p in (REPO / "src").iterdir() if p.is_dir()):
        if f"src/{d.name}" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: src/{d.name} exists but is absent "
                f"from the architecture map")
    return errors


ARCH_TAG_RE = re.compile(
    r"struct\s+(\w+)\s*\{[^}]*?static\s+constexpr\s+ArchId\s+kId", re.S)
ARCH_NAME_RE = re.compile(
    r"struct\s+(\w+)\s*\{[^}]*?kName\s*=\s*\"([^\"]+)\"", re.S)


def check_backends() -> list[str]:
    """docs/BACKENDS.md must list every arch tag compiled into src/arch/."""
    backends = REPO / "docs/BACKENDS.md"
    if not backends.exists():
        return ["docs/BACKENDS.md: required doc file missing"]
    text = backends.read_text()
    errors = []
    tags: dict[str, str | None] = {}
    for header in sorted((REPO / "src/arch").glob("*.hpp")):
        source = header.read_text()
        names = dict(ARCH_NAME_RE.findall(source))
        for tag in ARCH_TAG_RE.findall(source):
            tags[tag] = names.get(tag)
    if not tags:
        return ["src/arch: no architecture tags found (ArchId kId markers)"]
    for tag in sorted(tags):
        if tag not in text:
            errors.append(
                f"docs/BACKENDS.md: arch tag {tag} exists under src/arch/ "
                f"but is absent from the backend table")
        kname = tags[tag]
        if kname and kname not in text:
            errors.append(
                f"docs/BACKENDS.md: backend name \"{kname}\" ({tag}) is "
                f"absent from the backend table")
    return errors


MUTEX_ROW_RE = re.compile(r"^\|\s*`([\w:]+::\w+)`\s*\|\s*(\d+)\s*\|")
TOML_RANK_RE = re.compile(r'^"([\w:]+)"\s*=\s*(\d+)\s*$')


def check_mutex_table() -> list[str]:
    """DESIGN.md §14 mutex table <-> tools/lint/lock_order.toml ranks."""
    design = REPO / "DESIGN.md"
    toml_path = REPO / "tools/lint/lock_order.toml"
    if not toml_path.exists():
        return ["tools/lint/lock_order.toml: lock-order registry missing"]
    ranks: dict[str, int] = {}
    in_ranks = False
    for line in toml_path.read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith("["):
            in_ranks = stripped == "[ranks]"
            continue
        m = TOML_RANK_RE.match(stripped)
        if in_ranks and m:
            ranks[m.group(1)] = int(m.group(2))
    if not ranks:
        return ["tools/lint/lock_order.toml: no entries under [ranks]"]
    text = design.read_text()
    section = re.split(r"^## 14\..*$", text, maxsplit=1, flags=re.M)
    if len(section) < 2:
        return ["DESIGN.md: §14 (concurrency contracts) is missing"]
    rows: dict[str, int] = {}
    errors = []
    for line in section[1].splitlines():
        m = MUTEX_ROW_RE.match(line.strip())
        if m:
            rows[m.group(1)] = int(m.group(2))
    for mutex, rank in sorted(ranks.items()):
        if mutex not in rows:
            errors.append(
                f"DESIGN.md §14: mutex `{mutex}` is registered in "
                f"lock_order.toml but has no row in the mutex table")
        elif rows[mutex] != rank:
            errors.append(
                f"DESIGN.md §14: `{mutex}` documented with rank "
                f"{rows[mutex]} but lock_order.toml enforces {rank}")
    for mutex in sorted(rows):
        if mutex not in ranks:
            errors.append(
                f"DESIGN.md §14: table row `{mutex}` names a mutex that is "
                f"not registered in lock_order.toml")
    return errors


def main() -> int:
    errors = (check_links() + check_drift() + check_changes()
              + check_architecture_dirs() + check_backends()
              + check_mutex_table())
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: links, Config/EngineConfig docs, CHANGES.md, the "
          "architecture map, the backend table and the mutex table are in "
          "sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
