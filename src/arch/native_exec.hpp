#pragma once
/// \file native_exec.hpp
/// Wall-clock-lean block primitives of the NativeCpu backend. The simulated
/// primitives (sim/block_primitives.hpp, core/compaction.hpp) execute the
/// GPU's exact data movement so the cost model can charge it; these execute
/// the same *mathematics* with host-friendly strides and zero allocation on
/// the steady state, which is where the native backend's throughput comes
/// from (the ESC hot loop spends most of its time sorting and freeing
/// per-iteration buffers).
///
/// Bit-identity contract (the differential sweep in tests/test_arch.cpp
/// observes it, DESIGN.md §6 states it):
///  * `native_radix_sort` is a stable LSD radix sort, ascending on the low
///    `bits` key bits — the permutation of a stable sort is unique, so any
///    digit width produces the same order. It picks the widest digit (up to
///    11 bits) that minimizes the pass count, so a dynamic-bits key of ≤ 22
///    bits sorts in 2 passes where the simulated 4-bit version takes 6.
///  * `native_compact_sorted` combines equal-key runs strictly left to
///    right — the same association Algorithm 3's inclusive scan applies —
///    and emits rows/counts in the same order, so values and layouts match
///    the scan emulation bit for bit.
///
/// Everything here is duck-typed on the caller's codec/output types so the
/// arch layer stays below core (core/esc_block.cpp instantiates these with
/// KeyCodec and CompactionOutput).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace acs::arch {

/// 15-bit compaction-counter bound, mirroring
/// compaction_detail::kCounterMask so the native path enforces the exact
/// guard the scan emulation does (core/esc_block.cpp static_asserts the
/// mirror equality).
inline constexpr std::size_t kNativeCompactMaxElements = 0x7FFF;

/// Reusable double-buffers for native_radix_sort. One instance per thread
/// (the ESC workspace holds one thread_local); capacity persists across
/// calls, so the steady state sorts without touching the allocator.
template <class K, class V>
struct NativeSortScratch {
  std::vector<K> kbuf;
  std::vector<V> vbuf;
};

/// Widest radix digit a single pass may consume. 11 bits = 2048 counters
/// (16 KiB on the stack) — past that, zeroing and re-walking the histogram
/// costs more than it saves on the block-sized inputs ESC produces.
inline constexpr int kNativeMaxDigitBits = 11;

/// Stable LSD radix sort of (key, payload) pairs over the low `bits` key
/// bits, ascending — the native sibling of sim::block_radix_sort, with
/// pass-minimizing digit widths and caller-owned scratch instead of
/// per-call buffers. The digit width is the smallest that achieves the
/// minimum pass count `ceil(bits / kNativeMaxDigitBits)`, keeping the
/// histogram as small as the pass budget allows.
template <class K, class V>
void native_radix_sort(std::span<K> keys, std::span<V> payload, int bits,
                       NativeSortScratch<K, V>& scratch) {
  const std::size_t n = keys.size();
  if (n <= 1 || bits <= 0) return;
  const int passes = (bits + kNativeMaxDigitBits - 1) / kNativeMaxDigitBits;
  const int digit_bits = (bits + passes - 1) / passes;
  const std::uint64_t digit_mask = (std::uint64_t{1} << digit_bits) - 1;
  const std::size_t buckets = std::size_t{1} << digit_bits;

  if (scratch.kbuf.size() < n) scratch.kbuf.resize(n);
  if (scratch.vbuf.size() < n) scratch.vbuf.resize(n);
  K* ksrc = keys.data();
  V* vsrc = payload.data();
  K* kdst = scratch.kbuf.data();
  V* vdst = scratch.vbuf.data();

  for (int p = 0; p < passes; ++p) {
    const int shift = p * digit_bits;
    std::size_t count[std::size_t{1} << kNativeMaxDigitBits];
    std::fill(count, count + buckets, 0);
    for (std::size_t i = 0; i < n; ++i)
      count[(static_cast<std::uint64_t>(ksrc[i]) >> shift) & digit_mask]++;
    std::size_t run = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t d = count[b];
      count[b] = run;
      run += d;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto d = (static_cast<std::uint64_t>(ksrc[i]) >> shift) & digit_mask;
      kdst[count[d]] = ksrc[i];
      vdst[count[d]] = vsrc[i];
      ++count[d];
    }
    std::swap(ksrc, kdst);
    std::swap(vsrc, vdst);
  }
  if (ksrc != keys.data()) {
    std::copy(ksrc, ksrc + n, keys.data());
    std::copy(vsrc, vsrc + n, payload.data());
  }
}

/// Single-pass compaction of a key-sorted buffer into `out` (any type with
/// `keys`/`vals`/`rows` vectors shaped like core's CompactionOutput): sum
/// values of equal keys left to right and record (row, count) pairs at row
/// ends. Clears `out` but keeps its capacity — the caller reuses one output
/// across iterations instead of paying the scan emulation's per-call
/// allocation and O(n) state churn.
template <class T, class Codec, class Out>
void native_compact_sorted(std::span<const std::uint64_t> keys,
                           std::span<const T> vals, const Codec& codec,
                           Out& out) {
  out.keys.clear();
  out.vals.clear();
  out.rows.clear();
  const std::size_t n = keys.size();
  if (n > kNativeCompactMaxElements)
    throw std::length_error(
        "native_compact_sorted: " + std::to_string(n) +
        " elements exceed the 15-bit scan counters (max " +
        std::to_string(kNativeCompactMaxElements) + ")");
  if (n == 0) return;

  std::uint64_t run_key = keys[0];
  T run_val = vals[0];
  std::uint32_t row_count = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i < n && keys[i] == run_key) {
      // Same association as the inclusive scan: accumulate left to right.
      run_val = run_val + vals[i];
      continue;
    }
    out.keys.push_back(run_key);
    out.vals.push_back(run_val);
    ++row_count;
    if (i == n || !codec.same_row(keys[i], run_key)) {
      using Row = decltype(codec.row_of(run_key));
      out.rows.emplace_back(codec.row_of(run_key),
                            static_cast<Row>(row_count));
      row_count = 0;
    }
    if (i < n) {
      run_key = keys[i];
      run_val = vals[i];
    }
  }
}

}  // namespace acs::arch
