#include "serve/server.hpp"

#include <algorithm>

#include "core/acspgemm.hpp"
#include "tune/predictor.hpp"

namespace acs::serve {

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kDone:
      return "done";
    case ServeStatus::kFailed:
      return "failed";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
  }
  return "unknown";
}

template <class T>
Server<T>::Server(ServerConfig config)
    : cfg_(std::move(config)),
      admission_(cfg_.admission),
      drr_(cfg_.drr_quantum_s) {
  // Same per-arch tuner-grid seeding as the engine (which runs with tuning
  // off under a server — the server's grid must widen instead).
  if (cfg_.tuner.nnz_per_block == tune::TunerOptions{}.nnz_per_block)
    cfg_.tuner.nnz_per_block =
        tune::default_tuner_options(cfg_.engine.arch).nnz_per_block;
  const std::size_t executors = std::max(1u, cfg_.admission.executors);
  vfree_.assign(executors, 0.0);
  vbytes_.assign(executors, 0);
  // Pre-register configured tenants in listed order (part of the
  // deterministic DRR visiting order); unknown tenants join on first use.
  for (const TenantConfig& tc : cfg_.tenants) (void)ensure_tenant_locked(tc.name);
  runtime::EngineConfig ecfg = cfg_.engine;
  // The server owns tuning: it must know the exact overlay each job ran
  // with (ServeResult::tuned_applied) to keep results reconstructible by a
  // direct multiply, so the engine must not re-tune underneath it.
  ecfg.tuning = tune::TuningMode::kOff;
  engine_ = std::make_unique<runtime::Engine<T>>(ecfg);
  max_outstanding_ = engine_->workers() + cfg_.dispatch_slack;
  if (cfg_.tuning) tuner_thread_ = std::thread([this] { tune_loop(); });
}

template <class T>
Server<T>::~Server() {
  drain();
  {
    acs::MutexLock lock(tune_m_);
    tune_stop_ = true;
  }
  tune_cv_.notify_all();
  if (tuner_thread_.joinable()) tuner_thread_.join();
  // engine_ is declared last, so it is destroyed first — and after drain()
  // it holds no job whose callback could touch the members dying after it.
}

template <class T>
std::size_t Server<T>::ensure_tenant_locked(const std::string& name) {
  const auto it = tenant_index_.find(name);
  if (it != tenant_index_.end()) return it->second;
  TenantConfig tc;
  tc.name = name;
  for (const TenantConfig& c : cfg_.tenants)
    if (c.name == name) {
      tc = c;
      break;
    }
  const std::size_t idx = drr_.add_tenant(tc.weight);
  TenantRuntime rt;
  rt.bucket = TokenBucket(tc.quota_cost_s_per_s, tc.quota_burst_cost_s);
  rt.stats.name = name;
  rt.stats.weight = tc.weight > 0.0 ? tc.weight : 1.0;
  tenants_.push_back(std::move(rt));
  tenant_index_.emplace(name, idx);
  return idx;
}

template <class T>
ServeHandle<T> Server<T>::submit(Csr<T> a, Csr<T> b, SubmitInfo info,
                                 Config cfg) {
  auto state = std::make_shared<detail::ServeState<T>>();
  // Price, tune and fingerprint under the backend the engine will actually
  // run: the engine overlays its arch on every submission, so mirror it
  // here before any prediction — a SimBigDevice makespan (or a NativeCpu
  // thread count) differs from the submitted Config's device.
  runtime::apply_arch(cfg, cfg_.engine);
  acs::MutexLock lock(m_);

  // The virtual clock never runs backwards: a stale timestamp is clamped
  // to the latest arrival so the decision model stays well-defined.
  const double arrival = std::max(info.arrival_s, last_arrival_s_);
  last_arrival_s_ = arrival;
  info.arrival_s = arrival;

  const std::size_t tidx = ensure_tenant_locked(info.tenant);
  ++tenants_[tidx].stats.submitted;
  ++totals_.submitted;
  ACS_TRACE_COUNT(cfg_.trace, serve_submitted, 1);

  // Price the request: features are cached per structure fingerprint (the
  // extraction pass is the expensive part), the closed-form predictor then
  // costs one evaluation per submission.
  const runtime::Fingerprint fp = runtime::fingerprint(a, b, cfg_.engine.arch);
  PredictionEntry& pe = predictions_[fp];
  if (!pe.have_features) {
    pe.features = tune::extract_features(a, b, cfg_.tuner.sample_stride,
                                         cfg_.tuner.min_samples);
    pe.have_features = true;
  }

  // Graceful degradation, modeled in virtual time so the flag is a pure
  // function of the trace: the first submission of a fingerprint requests
  // an asynchronous tune and always runs degraded; later submissions run
  // degraded while the modeled tune latency has not elapsed.
  bool degraded = false;
  if (cfg_.tuning) {
    if (!pe.tune_requested) {
      pe.tune_requested = true;
      pe.tune_ready_s = arrival + cfg_.tune_latency_s;
      pe.tune_base = cfg;
      degraded = true;
      {
        acs::MutexLock tlock(tune_m_);
        tune_queue_.push_back(TuneTask{fp, pe.features, cfg});
      }
      tune_cv_.notify_one();
    } else {
      degraded = arrival < pe.tune_ready_s;
    }
  }

  // Admission costs are always predicted under the *submitted* Config, not
  // the tuned one — the tuned overlay may not be decided yet, and pricing
  // must not depend on tuner progress. Tuning only makes jobs cheaper than
  // their admission price, which errs on the safe side for deadlines.
  const double raw_cost = tune::predict_makespan_s(pe.features, cfg, sizeof(T));
  const double scaled_cost = std::max(0.0, raw_cost) *
                             std::max(1.0, cfg_.admission.deadline_safety);

  TenantRuntime& tr = tenants_[tidx];
  AdmissionDecision d;
  // Quota pre-check without consuming (an admission-rejected job must not
  // burn tokens); the slack mirrors TokenBucket::try_consume's.
  if (!tr.bucket.unmetered() &&
      tr.bucket.available(arrival) + 1e-12 < scaled_cost) {
    d.outcome = AdmissionOutcome::kRejectedQuota;
    d.predicted_cost_s = scaled_cost;
    d.backlog_jobs = admission_.backlog_jobs(arrival);
  } else {
    d = admission_.evaluate(arrival, info.deadline_s, raw_cost);
    if (d.admitted()) (void)tr.bucket.try_consume(arrival, scaled_cost);
  }
  d.degraded_plan = degraded;
  state->decision = d;

  if (!d.admitted()) {
    ++totals_.rejected;
    ACS_TRACE_COUNT(cfg_.trace, serve_rejected, 1);
    switch (d.outcome) {
      case AdmissionOutcome::kRejectedDeadline:
        ++tr.stats.rejected_deadline;
        break;
      case AdmissionOutcome::kRejectedQuota:
        ++tr.stats.rejected_quota;
        break;
      case AdmissionOutcome::kRejectedQueueFull:
        ++tr.stats.rejected_queue_full;
        break;
      default:
        break;
    }
    ServeResult<T> r;
    r.status = ServeStatus::kRejected;
    r.admission = d;
    r.tenant = info.tenant;
    r.priority = info.priority;
    r.arrival_s = arrival;
    r.degraded = degraded;
    state->resolve(std::move(r));
    return ServeHandle<T>(std::move(state));
  }

  ++tr.stats.admitted;
  ++totals_.admitted;
  ACS_TRACE_COUNT(cfg_.trace, serve_admitted, 1);
  if (degraded) {
    ++tr.stats.degraded;
    ++totals_.degraded;
    ACS_TRACE_COUNT(cfg_.trace, serve_degraded, 1);
  }

  JobRec rec;
  rec.id = next_id_++;
  rec.tenant = tidx;
  rec.info = info;
  rec.cfg = cfg;
  rec.fp = fp;
  rec.degraded = degraded;
  rec.cost_s = d.predicted_cost_s;
  rec.pool_bytes = estimate_chunk_pool_bytes(a, b, cfg);
  rec.decision = d;
  rec.a = std::move(a);
  rec.b = std::move(b);
  rec.state = state;
  ++unresolved_;
  drr_.enqueue(tidx, QueuedJob{rec.id, rec.cost_s, info.priority, arrival});
  queued_jobs_.emplace(rec.id, std::move(rec));

  const std::size_t depth = drr_.queued_jobs() + ready_.size();
  if (depth > totals_.queue_depth_peak) totals_.queue_depth_peak = depth;
  ACS_TRACE_GAUGE_MAX(cfg_.trace, serve_queue_depth_peak, depth);

  advance_virtual_locked(arrival);
  pump_locked();
  return ServeHandle<T>(std::move(state));
}

template <class T>
void Server<T>::advance_virtual_locked(double until_s) {
  const std::size_t ceiling = cfg_.arena_ceiling_bytes;
  for (;;) {
    QueuedJob qj;
    std::size_t tidx = 0;
    if (!drr_.pop_next(qj, &tidx)) return;
    const auto it = queued_jobs_.find(qj.id);
    JobRec rec = std::move(it->second);
    queued_jobs_.erase(it);

    double start =
        std::max(*std::min_element(vfree_.begin(), vfree_.end()),
                 rec.info.arrival_s);

    if (ceiling > 0) {
      if (rec.pool_bytes > ceiling) {
        // Can never fit under the ceiling, on an idle machine or otherwise.
        resolve_shed_locked(std::move(rec));
        continue;
      }
      bool gated = false;
      for (;;) {
        std::size_t busy = 0;
        for (std::size_t i = 0; i < vfree_.size(); ++i)
          if (vfree_[i] > start) busy += vbytes_[i];
        if (busy + rec.pool_bytes <= ceiling) break;
        gated = true;
        // Wait (in virtual time) for the earliest modeled completion; the
        // busy set is non-empty here, so the bound is finite and shrinks.
        double nf = std::numeric_limits<double>::infinity();
        for (const double f : vfree_)
          if (f > start) nf = std::min(nf, f);
        start = nf;
      }
      // Memory pressure sheds the queue tail rather than letting deadlines
      // rot: lowest priority first, beyond the configured bound.
      if (gated) shed_over_cap_locked();
    }

    if (start > until_s) {
      // Dispatching this job belongs to the future — a later arrival may
      // out-rank it under DRR by then. Put it back untouched.
      drr_.requeue_front(tidx, qj);
      queued_jobs_.emplace(qj.id, std::move(rec));
      return;
    }

    rec.virtual_start_s = start;
    rec.virtual_finish_s = start + rec.cost_s;
    rec.deadline_missed = rec.virtual_finish_s > rec.info.deadline_s;
    TenantRuntime& tr = tenants_[rec.tenant];
    tr.stats.served_cost_s += rec.cost_s;
    if (rec.deadline_missed) {
      ++tr.stats.deadline_misses;
      ++totals_.deadline_misses;
      ACS_TRACE_COUNT(cfg_.trace, serve_deadline_misses, 1);
    }

    const auto slot = std::min_element(vfree_.begin(), vfree_.end());
    const auto e = static_cast<std::size_t>(
        std::distance(vfree_.begin(), slot));
    vfree_[e] = rec.virtual_finish_s;
    vbytes_[e] = rec.pool_bytes;
    ready_.push_back(std::move(rec));
  }
}

template <class T>
void Server<T>::shed_over_cap_locked() {
  const std::size_t cap = cfg_.shed_queue_jobs;
  if (cap == 0) return;  // shedding disabled: gated jobs wait
  QueuedJob qj;
  std::size_t tidx = 0;
  while (drr_.queued_jobs() > cap && drr_.shed_lowest_priority(qj, &tidx)) {
    const auto it = queued_jobs_.find(qj.id);
    JobRec rec = std::move(it->second);
    queued_jobs_.erase(it);
    resolve_shed_locked(std::move(rec));
  }
}

template <class T>
void Server<T>::resolve_shed_locked(JobRec rec) {
  TenantRuntime& tr = tenants_[rec.tenant];
  ++tr.stats.shed;
  ++totals_.shed;
  ACS_TRACE_COUNT(cfg_.trace, serve_shed, 1);
  ServeResult<T> r = make_result_locked(rec, ServeStatus::kShed);
  // The handle's decision stays "admitted" (it was); the result records
  // what ultimately happened.
  r.admission.outcome = AdmissionOutcome::kShedMemory;
  rec.state->resolve(std::move(r));
  --unresolved_;
  drain_cv_.notify_all();
}

template <class T>
ServeResult<T> Server<T>::make_result_locked(const JobRec& rec,
                                             ServeStatus status) {
  ServeResult<T> r;
  r.status = status;
  r.admission = rec.decision;
  r.tenant = tenants_[rec.tenant].stats.name;
  r.priority = rec.info.priority;
  r.arrival_s = rec.info.arrival_s;
  r.degraded = rec.degraded;
  r.virtual_start_s = rec.virtual_start_s;
  r.virtual_finish_s = rec.virtual_finish_s;
  r.deadline_missed = rec.deadline_missed;
  return r;
}

template <class T>
void Server<T>::pump_locked() {
  const std::size_t ceiling = cfg_.arena_ceiling_bytes;
  while (outstanding_ < max_outstanding_ && !ready_.empty()) {
    // Real backpressure mirrors the virtual gate: never stack predicted
    // pool demand past the ceiling (unless the job would be alone).
    if (ceiling > 0 && outstanding_ > 0 &&
        outstanding_pool_bytes_ + ready_.front().pool_bytes > ceiling)
      break;
    JobRec rec = std::move(ready_.front());
    ready_.pop_front();

    TunedParams tuned;
    if (cfg_.tuning) {
      // Warm dispatches run the full tuned overlay; degraded ones the
      // budgeted predictor-only cold overlay — the modeled tune latency is
      // the window in which the cheap decision substitutes for the full
      // one, exactly the engine's cold-path mechanism.
      tuned = rec.degraded ? ensure_cold_tuned_locked(rec.fp, rec.cfg)
                           : ensure_tuned_locked(rec.fp, rec.cfg);
    }
    Config eff = rec.cfg;
    tuned.apply(eff);

    ServeResult<T> proto = make_result_locked(rec, ServeStatus::kDone);
    proto.tuned_applied = tuned;
    ++outstanding_;
    outstanding_pool_bytes_ += rec.pool_bytes;
    auto st = rec.state;
    const std::size_t tidx = rec.tenant;
    const std::size_t pool = rec.pool_bytes;
    engine_->submit(
        std::move(rec.a), std::move(rec.b), eff,
        [this, st, tidx, pool,
         proto = std::move(proto)](runtime::JobResult<T>& jr) mutable {
          const bool job_failed = jr.failed();
          proto.status = job_failed ? ServeStatus::kFailed : ServeStatus::kDone;
          proto.job = std::move(jr);
          // Resolve before the accounting decrement: once drain() sees
          // unresolved_ == 0, every handle is guaranteed resolved.
          st->resolve(std::move(proto));
          {
            acs::MutexLock lock(m_);
            --outstanding_;
            outstanding_pool_bytes_ -= pool;
            TenantRuntime& tr = tenants_[tidx];
            if (job_failed) {
              ++tr.stats.failed;
              ++totals_.failed;
            } else {
              ++tr.stats.completed;
              ++totals_.completed;
            }
            --unresolved_;
            pump_locked();
          }
          drain_cv_.notify_all();
        });
  }
}

template <class T>
TunedParams Server<T>::ensure_tuned_locked(const runtime::Fingerprint& fp,
                                           const Config& base) {
  PredictionEntry& pe = predictions_[fp];
  if (!pe.tuned_computed) {
    // The tuner thread has not gotten here yet — rank synchronously.
    // Tuning is a pure function of (features, first-submitted Config), so
    // whichever side computes first stores the same overlay.
    const tune::AutoTuner tuner(cfg_.tuner);
    pe.tuned = tuner.choose(pe.features,
                            pe.tune_requested ? pe.tune_base : base,
                            sizeof(T), 0.0);
    pe.tuned_computed = true;
  }
  return pe.tuned;
}

template <class T>
TunedParams Server<T>::ensure_cold_tuned_locked(const runtime::Fingerprint& fp,
                                                const Config& base) {
  PredictionEntry& pe = predictions_[fp];
  if (!pe.cold_computed) {
    const tune::AutoTuner tuner(cfg_.tuner);
    pe.cold = tuner.choose_budgeted(
        pe.features, pe.tune_requested ? pe.tune_base : base, sizeof(T),
        cfg_.engine.cold_tune_candidate_budget, 0.0);
    pe.cold_computed = true;
    ++cold_tunes_;
    ACS_TRACE_COUNT(cfg_.trace, cold_tunes, 1);
  }
  return pe.cold;
}

template <class T>
void Server<T>::tune_loop() {
  for (;;) {
    TuneTask task;
    {
      acs::MutexLock lock(tune_m_);
      while (!tune_stop_ && tune_queue_.empty()) tune_cv_.wait(lock);
      if (tune_queue_.empty()) return;  // tune_stop_ set and queue drained
      task = std::move(tune_queue_.front());
      tune_queue_.pop_front();
    }
    const tune::AutoTuner tuner(cfg_.tuner);
    const TunedParams p =
        tuner.choose(task.features, task.base, sizeof(T), 0.0);
    {
      acs::MutexLock lock(m_);
      PredictionEntry& pe = predictions_[task.fp];
      if (!pe.tuned_computed) {
        pe.tuned = p;
        pe.tuned_computed = true;
      }
    }
  }
}

template <class T>
void Server<T>::drain() {
  acs::MutexLock lock(m_);
  advance_virtual_locked(std::numeric_limits<double>::infinity());
  pump_locked();
  while (unresolved_ != 0) drain_cv_.wait(lock);
}

template <class T>
ServeStats Server<T>::stats() const {
  acs::MutexLock lock(m_);
  ServeStats s = totals_;
  s.tenants.clear();
  s.tenants.reserve(tenants_.size());
  for (const TenantRuntime& tr : tenants_) s.tenants.push_back(tr.stats);
  s.queued_jobs = drr_.queued_jobs() + ready_.size();
  s.in_flight_jobs = outstanding_;
  return s;
}

template <class T>
trace::MetricsSnapshot Server<T>::metrics() const {
  // Engine first, without holding m_ (each side locks only its own mutex).
  trace::MetricsSnapshot m = engine_->metrics();
  acs::MutexLock lock(m_);
  m.counters.serve_submitted = totals_.submitted;
  m.counters.serve_admitted = totals_.admitted;
  m.counters.serve_rejected = totals_.rejected;
  m.counters.serve_shed = totals_.shed;
  m.counters.serve_degraded = totals_.degraded;
  m.counters.serve_deadline_misses = totals_.deadline_misses;
  m.counters.serve_queue_depth_peak = totals_.queue_depth_peak;
  // Engine tuning is off under a server; the cold tunes are the server's.
  m.counters.cold_tunes += cold_tunes_;
  m.serve_tenants.reserve(tenants_.size());
  for (const TenantRuntime& tr : tenants_) {
    trace::TenantServeCounters row;
    row.tenant = tr.stats.name;
    row.submitted = tr.stats.submitted;
    row.admitted = tr.stats.admitted;
    row.rejected = tr.stats.rejected_deadline + tr.stats.rejected_quota +
                   tr.stats.rejected_queue_full;
    row.shed = tr.stats.shed;
    row.completed = tr.stats.completed;
    row.degraded = tr.stats.degraded;
    row.deadline_misses = tr.stats.deadline_misses;
    m.serve_tenants.push_back(std::move(row));
  }
  return m;
}

template class Server<float>;
template class Server<double>;

}  // namespace acs::serve
