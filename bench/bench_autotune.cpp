/// \file bench_autotune.cpp
/// Tuned-vs-default throughput of the auto-tuner (src/tune) on a
/// mixed-pattern workload: eight structural regimes, interleaved so each
/// tuning decision is made (and cached) once per structure fingerprint.
///
/// The mix follows the paper's application domains. Three jobs are
/// multi-source frontier expansions — a one-entry-per-row selector matrix
/// times a hub-heavy web graph, the batched-BFS/graph-analytics pattern.
/// Their hub rows sit *below* the default long-row threshold
/// (temp_capacity() = 2048), so the fixed configuration expands every hub
/// product through the ESC sort, while the tuner reads the row-length
/// quantiles and lowers `long_row_threshold`: the diverted rows are
/// unshared (selector rows have one entry), so their pointer chunks skip
/// both sort and merge and stream straight through chunk copy — the
/// Section 3.4 mechanism, applied adaptively. One job is an AMG Galerkin
/// prolongation product (A·P, one entry per P row) where the tuner's
/// larger `nnz_per_block` pays; the remaining four (stencil, power-law,
/// uniform and block-dense self-products) are regimes where the default
/// configuration is already near-optimal — the tuner must not lose there.
///
/// Three engines run the identical batch: tuning off (the fixed default
/// Config), static-cost-model tuning and feedback tuning; each is measured
/// cold (first pass, plans built) and warm (replayed plans). The feedback
/// engine gets one extra convergence pass between cold and warm, because
/// its first run measures the exact product count and may re-rank
/// (DESIGN.md §9).
///
/// Matrix values are quantized to quarters (round(4v)/4 + 1/4), the same
/// technique as the determinism suite's
/// BlockShapesAgreeOnExactlyRepresentableValues: products and sums of such
/// values are exact in float at these magnitudes, so the tuned run — whose
/// different block shape and diversion regroup the partial sums — must
/// produce *bit-identical* output, and the bench verifies that with
/// `equals_exact` per job.
///
/// A fourth engine runs the cold-path-cliff configuration (ISSUE: cold
/// gate): feedback tuning with predictor-only budgeted cold tunes,
/// background re-tune and a persistent tune cache. Its cold batch absorbs
/// every first-sight tuning decision and still may not fall below 1/1.5x
/// of the untuned engine's cold throughput, while its warm batch (after
/// the background refinements land) must keep the 1.15x tuned advantage.
/// A fifth engine then restarts from the persisted cache file and must
/// serve the whole batch with zero cold tunes and bit-identical output.
///
/// Emits JSON (stdout + bench_out/bench_autotune.json): jobs/s per engine,
/// the tuned parameter overlay chosen per structure, tuned-vs-default
/// speedups, restart counts, tuning-lifecycle counters.
///
/// Run:  ./bench_autotune [--smoke] [jobs_per_batch] [engine_workers]
///       --smoke shrinks the batch (16 jobs, 2 workers) for the tier-1
///       CI lane; all gates still apply.
///
/// Exit code gates the PR's acceptance criteria: feedback-tuned warm
/// throughput >= 1.15x the default-config warm throughput, zero restarts
/// on the warm replay, bit-identical outputs vs. the untuned engine, the
/// adaptive engine's cold-batch floor and warm target above, and the
/// restored engine's zero-cold-tune warm start.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "suite/bench_runner.hpp"

namespace {

using Pair = std::pair<acs::Csr<float>, acs::Csr<float>>;

constexpr std::size_t kStructures = 8;
const char* const kStructureNames[kStructures] = {
    "frontier_web_a", "frontier_web_b", "frontier_web_c", "galerkin_ap",
    "stencil_5pt_aa", "powerlaw_aa",    "uniform_random", "block_dense"};

/// Quantize to quarters offset from zero: products and sums of such values
/// are exact floats here, so any summation grouping yields the same bits.
void quantize(acs::Csr<float>& m) {
  for (auto& v : m.values) v = std::round(v * 4.0f) / 4.0f + 0.25f;
}

/// One-entry-per-row frontier selector: row i visits vertex (i*733+17) mod n
/// (733 is coprime to every n used here, so each vertex is hit once).
acs::Csr<float> frontier_selector(acs::index_t n) {
  acs::Coo<float> sel;
  sel.rows = n;
  sel.cols = n;
  for (acs::index_t i = 0; i < n; ++i)
    sel.push(i, static_cast<acs::index_t>((static_cast<long>(i) * 733 + 17) % n),
             1.25f);
  return sel.to_csr();
}

/// Aggregation prolongation: fine point i maps to coarse point i/4 with
/// weight 1.25 (one entry per row — the AMG Galerkin A·P regime).
acs::Csr<float> prolongation(acs::index_t fine) {
  acs::Coo<float> p;
  p.rows = fine;
  p.cols = (fine + 3) / 4;
  for (acs::index_t i = 0; i < fine; ++i) p.push(i, i / 4, 1.25f);
  return p.to_csr();
}

std::vector<Pair> mixed_pattern_batch(std::size_t count) {
  std::vector<Pair> pool;
  pool.reserve(kStructures);
  // Hub-heavy web graphs: max row length below the default long-row
  // threshold (2048), tail mass concentrated in rows the tuner can divert.
  auto web_a = acs::gen_powerlaw<float>(8000, 8000, 16.0, 1.1, 1700, 43);
  quantize(web_a);
  pool.emplace_back(frontier_selector(8000), web_a);
  auto web_b = acs::gen_powerlaw<float>(8000, 8000, 14.0, 1.2, 1800, 41);
  quantize(web_b);
  pool.emplace_back(frontier_selector(8000), web_b);
  auto web_c = acs::gen_powerlaw<float>(12000, 12000, 16.0, 1.05, 1500, 47);
  quantize(web_c);
  pool.emplace_back(frontier_selector(12000), std::move(web_c));
  auto fine = acs::gen_stencil_2d<float>(128, 128, 5);
  quantize(fine);
  pool.emplace_back(fine, prolongation(fine.rows));
  auto s = acs::gen_stencil_2d<float>(64, 64, 9);
  quantize(s);
  pool.emplace_back(s, s);
  auto g = acs::gen_powerlaw<float>(2000, 2000, 8.0, 1.6, 400, 21);
  quantize(g);
  pool.emplace_back(g, g);
  auto u = acs::gen_uniform_random<float>(800, 800, 6.0, 1.5, 22);
  quantize(u);
  pool.emplace_back(u, u);
  auto d = acs::gen_block_dense<float>(300, 300, 8, 2, 23);
  quantize(d);
  pool.emplace_back(d, d);

  std::vector<Pair> pairs;
  pairs.reserve(count);
  for (std::size_t j = 0; j < count; ++j)
    pairs.push_back(pool[j % pool.size()]);
  return pairs;
}

void emit_batch(std::ostream& os, const acs::BatchBenchResult& r, bool last) {
  os << "    \"" << r.label << "\": {"
     << "\"jobs\": " << r.jobs << ", \"wall_s\": " << r.wall_s
     << ", \"jobs_per_s\": " << r.jobs_per_s
     << ", \"sim_time_s\": " << r.sim_time_s
     << ", \"restarts\": " << r.restarts
     << ", \"plan_hit_rate\": " << r.plan_hit_rate
     << ", \"tuned_jobs\": " << r.tuned_jobs << "}" << (last ? "\n" : ",\n");
}

void emit_tuned(std::ostream& os, const char* name,
                const acs::TunedParams& p, bool last) {
  os << "    \"" << name << "\": {\"valid\": " << (p.valid ? "true" : "false")
     << ", \"nnz_per_block\": " << p.nnz_per_block
     << ", \"retain_per_thread\": " << p.retain_per_thread
     << ", \"long_row_threshold\": " << p.long_row_threshold
     << ", \"path_merge_max_chunks\": " << p.path_merge_max_chunks << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      pos.push_back(argv[i]);
  }
  const std::size_t jobs =
      !pos.empty() ? static_cast<std::size_t>(std::atoll(pos[0]))
                   : (smoke ? 16 : 24);
  const unsigned workers =
      pos.size() > 1
          ? static_cast<unsigned>(std::atoi(pos[1]))
          : (smoke ? 2u
                   : std::min(4u, std::max(
                                      1u, std::thread::hardware_concurrency())));

  const auto pairs = mixed_pattern_batch(jobs);
  const acs::Config cfg;  // the paper-default configuration, untouched

  // Baseline: the engine with tuning off — same plan cache and pool arena
  // benefits, so the comparison isolates the tuner's contribution.
  acs::runtime::EngineConfig base_ec;
  base_ec.workers = workers;
  acs::runtime::Engine<float> base(base_ec);
  const auto base_cold = acs::run_engine_batch(base, pairs, cfg, "default_cold");
  auto base_warm = acs::run_engine_batch(base, pairs, cfg, "default_warm");
  {  // second warm pass; keep the faster one to damp host timing noise
    const auto again = acs::run_engine_batch(base, pairs, cfg, "default_warm");
    if (again.jobs_per_s > base_warm.jobs_per_s) base_warm = again;
  }

  acs::runtime::EngineConfig static_ec = base_ec;
  static_ec.tuning = acs::tune::TuningMode::kStaticCostModel;
  acs::runtime::Engine<float> tuned_static(static_ec);
  const auto static_cold =
      acs::run_engine_batch(tuned_static, pairs, cfg, "static_cold");
  const auto static_warm =
      acs::run_engine_batch(tuned_static, pairs, cfg, "static_warm");

  acs::runtime::EngineConfig fb_ec = base_ec;
  fb_ec.tuning = acs::tune::TuningMode::kFeedback;
  acs::runtime::Engine<float> tuned_fb(fb_ec);
  const auto fb_cold =
      acs::run_engine_batch(tuned_fb, pairs, cfg, "feedback_cold");
  const auto fb_refine =
      acs::run_engine_batch(tuned_fb, pairs, cfg, "feedback_refine");
  auto fb_warm = acs::run_engine_batch(tuned_fb, pairs, cfg, "feedback_warm");
  {
    const auto again = acs::run_engine_batch(tuned_fb, pairs, cfg, "feedback_warm");
    if (again.jobs_per_s > fb_warm.jobs_per_s) fb_warm = again;
  }

  // The cold-path-cliff configuration: predictor-only budgeted cold tunes,
  // asynchronous full-grid refinement, tuned decisions persisted on exit.
  const std::string cache_path =
      acs::bench_out_path("bench_autotune_tunecache.bin");
  std::remove(cache_path.c_str());
  acs::runtime::EngineConfig ad_ec = base_ec;
  ad_ec.tuning = acs::tune::TuningMode::kFeedback;
  ad_ec.background_retune = true;
  ad_ec.cold_tune_candidate_budget = 8;
  ad_ec.cold_tune_feature_samples = 256;
  ad_ec.tune_cache_path = cache_path;

  acs::BatchBenchResult ad_cold, ad_warm;
  acs::runtime::EngineStats ad_stats;
  bool ad_identical = true;
  {
    acs::runtime::Engine<float> adaptive(ad_ec);
    ad_cold = acs::run_engine_batch(adaptive, pairs, cfg, "adaptive_cold");
    adaptive.wait_background_tunes();  // refinements land before the replay
    ad_warm = acs::run_engine_batch(adaptive, pairs, cfg, "adaptive_warm");
    {
      const auto again =
          acs::run_engine_batch(adaptive, pairs, cfg, "adaptive_warm");
      if (again.jobs_per_s > ad_warm.jobs_per_s) ad_warm = again;
    }
    const auto probe = adaptive.multiply_batch(pairs, cfg);
    const auto ref_probe = base.multiply_batch(pairs, cfg);
    for (std::size_t i = 0; i < probe.size(); ++i)
      if (probe[i].failed() || ref_probe[i].failed() ||
          !probe[i].c.equals_exact(ref_probe[i].c))
        ad_identical = false;
    ad_stats = adaptive.stats();
  }  // destructor persists the tune cache

  // Warm restart: a fresh engine over the persisted file must replay every
  // tuning decision — zero cold tunes, bit-identical output.
  acs::runtime::Engine<float> restored(ad_ec);
  const std::size_t cache_loads = restored.stats().cache_loads;
  const auto restored_warm =
      acs::run_engine_batch(restored, pairs, cfg, "restored_warm");
  bool restored_identical = true;
  {
    const auto probe = restored.multiply_batch(pairs, cfg);
    const auto ref_probe = base.multiply_batch(pairs, cfg);
    for (std::size_t i = 0; i < probe.size(); ++i)
      if (probe[i].failed() || ref_probe[i].failed() ||
          !probe[i].c.equals_exact(ref_probe[i].c))
        restored_identical = false;
  }
  const std::size_t restored_cold_tunes = restored.stats().cold_tunes;

  // Bit-identity: every converged tuned job must equal the untuned one.
  // (Values are exactly representable, so regrouped partial sums are exact.)
  const auto ref = base.multiply_batch(pairs, cfg);
  const auto tuned = tuned_fb.multiply_batch(pairs, cfg);
  bool identical = ref.size() == tuned.size();
  acs::TunedParams chosen[kStructures];
  for (std::size_t i = 0; identical && i < ref.size(); ++i) {
    if (ref[i].failed() || tuned[i].failed() ||
        !ref[i].c.equals_exact(tuned[i].c))
      identical = false;
  }
  for (std::size_t i = 0; i < tuned.size() && i < kStructures; ++i)
    chosen[i] = tuned[i].tuned;

  const double static_speedup =
      base_warm.jobs_per_s > 0.0 ? static_warm.jobs_per_s / base_warm.jobs_per_s
                                 : 0.0;
  const double fb_speedup =
      base_warm.jobs_per_s > 0.0 ? fb_warm.jobs_per_s / base_warm.jobs_per_s
                                 : 0.0;
  const double ad_cold_ratio =
      base_cold.jobs_per_s > 0.0 ? ad_cold.jobs_per_s / base_cold.jobs_per_s
                                 : 0.0;
  const double ad_speedup =
      base_warm.jobs_per_s > 0.0 ? ad_warm.jobs_per_s / base_warm.jobs_per_s
                                 : 0.0;

  std::ostringstream json;
  json << "{\n  \"bench\": \"autotune\", \"jobs_per_batch\": " << jobs
       << ", \"engine_workers\": " << workers << ",\n  \"batches\": {\n";
  emit_batch(json, base_cold, false);
  emit_batch(json, base_warm, false);
  emit_batch(json, static_cold, false);
  emit_batch(json, static_warm, false);
  emit_batch(json, fb_cold, false);
  emit_batch(json, fb_refine, false);
  emit_batch(json, fb_warm, false);
  emit_batch(json, ad_cold, false);
  emit_batch(json, ad_warm, false);
  emit_batch(json, restored_warm, true);
  json << "  },\n  \"tuned_params\": {\n";
  for (std::size_t i = 0; i < kStructures; ++i)
    emit_tuned(json, kStructureNames[i], chosen[i], i + 1 == kStructures);
  json << "  },\n  \"static_speedup_vs_default\": " << static_speedup
       << ",\n  \"feedback_speedup_vs_default\": " << fb_speedup
       << ",\n  \"feedback_warm_restarts\": " << fb_warm.restarts
       << ",\n  \"outputs_bit_identical\": " << (identical ? "true" : "false")
       << ",\n  \"adaptive_cold_ratio_vs_default_cold\": " << ad_cold_ratio
       << ",\n  \"adaptive_speedup_vs_default\": " << ad_speedup
       << ",\n  \"adaptive_outputs_bit_identical\": "
       << (ad_identical ? "true" : "false")
       << ",\n  \"tune_counters\": {\"cold_tunes\": " << ad_stats.cold_tunes
       << ", \"bg_tunes\": " << ad_stats.bg_tunes
       << ", \"restored_cache_loads\": " << cache_loads
       << ", \"restored_cold_tunes\": " << restored_cold_tunes << "}"
       << ",\n  \"restored_outputs_bit_identical\": "
       << (restored_identical ? "true" : "false") << "\n}\n";

  std::cout << json.str();
  std::ofstream(acs::bench_out_path("bench_autotune.json")) << json.str();

  // The PR's acceptance criteria, checked where the numbers are produced.
  const bool fb_ok = fb_speedup >= 1.15 && fb_warm.restarts == 0 && identical;
  // Cold-path cliff gate: absorbing every first-sight tune may cost at most
  // 1.5x of the untuned cold batch, and the warm advantage must survive.
  const bool cold_ok = ad_cold_ratio * 1.5 >= 1.0;
  const bool ad_ok = cold_ok && ad_speedup >= 1.15 && ad_identical;
  const bool restored_ok =
      cache_loads > 0 && restored_cold_tunes == 0 && restored_identical;
  const bool ok = fb_ok && ad_ok && restored_ok;
  std::cerr << "feedback warm speedup: " << fb_speedup
            << "x (static: " << static_speedup
            << "x), warm restarts: " << fb_warm.restarts
            << ", bit-identical: " << (identical ? "yes" : "NO") << "\n"
            << "adaptive cold ratio: " << ad_cold_ratio
            << "x (floor 1/1.5), warm speedup: " << ad_speedup
            << "x, cold/bg tunes: " << ad_stats.cold_tunes << "/"
            << ad_stats.bg_tunes
            << ", restored cache loads: " << cache_loads
            << ", restored cold tunes: " << restored_cold_tunes
            << ", restored bit-identical: " << (restored_identical ? "yes" : "NO")
            << (ok ? "  [ok]" : "  [BELOW TARGET]") << "\n";
  return ok ? 0 : 1;
}
