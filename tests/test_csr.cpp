#include "matrix/csr.hpp"

#include <gtest/gtest.h>

namespace acs {
namespace {

Csr<double> small_matrix() {
  // [1 0 2]
  // [0 0 0]
  // [3 4 0]
  Csr<double> m;
  m.rows = 3;
  m.cols = 3;
  m.row_ptr = {0, 2, 2, 4};
  m.col_idx = {0, 2, 0, 1};
  m.values = {1, 2, 3, 4};
  return m;
}

TEST(Csr, ValidSmallMatrix) {
  EXPECT_EQ(small_matrix().validate(), "");
}

TEST(Csr, NnzAndRowLength) {
  const auto m = small_matrix();
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.row_length(0), 2);
  EXPECT_EQ(m.row_length(1), 0);
  EXPECT_EQ(m.row_length(2), 2);
}

TEST(Csr, ValidateCatchesBadRowPtrSize) {
  auto m = small_matrix();
  m.row_ptr.pop_back();
  EXPECT_NE(m.validate(), "");
}

TEST(Csr, ValidateCatchesNonMonotoneRowPtr) {
  auto m = small_matrix();
  m.row_ptr = {0, 3, 2, 4};
  EXPECT_NE(m.validate(), "");
}

TEST(Csr, ValidateCatchesColumnOutOfRange) {
  auto m = small_matrix();
  m.col_idx[1] = 3;
  EXPECT_NE(m.validate(), "");
}

TEST(Csr, ValidateCatchesUnsortedColumns) {
  auto m = small_matrix();
  m.col_idx = {2, 0, 0, 1};
  EXPECT_NE(m.validate(), "");
}

TEST(Csr, ValidateCatchesDuplicateColumns) {
  auto m = small_matrix();
  m.col_idx = {0, 0, 0, 1};
  EXPECT_NE(m.validate(), "");
}

TEST(Csr, ValidateCatchesNnzMismatch) {
  auto m = small_matrix();
  m.values.pop_back();
  EXPECT_NE(m.validate(), "");
}

TEST(Csr, EqualsExact) {
  const auto a = small_matrix();
  auto b = small_matrix();
  EXPECT_TRUE(a.equals_exact(b));
  b.values[0] = 1.5;
  EXPECT_FALSE(a.equals_exact(b));
}

TEST(Csr, AlmostEquals) {
  const auto a = small_matrix();
  auto b = small_matrix();
  b.values[0] += 1e-12;
  EXPECT_TRUE(a.almost_equals(b, 1e-9));
  EXPECT_FALSE(a.almost_equals(b, 1e-14));
}

TEST(Csr, AlmostEqualsRequiresSameStructure) {
  const auto a = small_matrix();
  auto b = small_matrix();
  b.col_idx[3] = 2;
  EXPECT_FALSE(a.almost_equals(b, 1.0));
}

TEST(Csr, PruneZeros) {
  auto m = small_matrix();
  m.values[1] = 0.0;
  m.prune_zeros();
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.row_length(0), 1);
  EXPECT_EQ(m.col_idx[0], 0);
}

TEST(Csr, PruneZerosAllZeroMatrix) {
  auto m = small_matrix();
  for (auto& v : m.values) v = 0.0;
  m.prune_zeros();
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.validate(), "");
}

TEST(Csr, Identity) {
  const auto id = Csr<float>::identity(4);
  EXPECT_EQ(id.validate(), "");
  EXPECT_EQ(id.nnz(), 4);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(id.col_idx[usize(i)], i);
    EXPECT_EQ(id.values[usize(i)], 1.0f);
  }
}

TEST(Csr, EmptyMatrixIsValid) {
  Csr<double> m;
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Csr, ByteSize) {
  const auto m = small_matrix();
  EXPECT_EQ(m.byte_size(), 4 * sizeof(index_t) + 4 * sizeof(index_t) + 4 * sizeof(double));
}

}  // namespace
}  // namespace acs
