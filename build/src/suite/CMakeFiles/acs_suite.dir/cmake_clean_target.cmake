file(REMOVE_RECURSE
  "libacs_suite.a"
)
