#include "baselines/esc_global.hpp"

#include <algorithm>
#include <chrono>

#include "core/chunk.hpp"
#include "matrix/stats.hpp"
#include "sim/block_primitives.hpp"
#include "sim/cost_model.hpp"

namespace acs {

template <class T>
Csr<T> esc_global_multiply(const Csr<T>& a, const Csr<T>& b,
                           SpgemmStats* stats) {
  if (a.cols != b.rows)
    throw std::invalid_argument("esc_global: dimension mismatch");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::DeviceConfig dev{};  // baselines run on the same device model

  const offset_t products = intermediate_products(a, b);

  // --- Expansion: every temporary product (row, col, value) is written to
  // global memory. Keys use the full static bit width.
  struct Temp {
    index_t row, col;
    T val;
  };
  std::vector<Temp> temps;
  temps.reserve(static_cast<std::size_t>(products));
  sim::MetricCounters expand;
  expand.global_bytes_coalesced +=
      static_cast<std::uint64_t>(a.nnz()) * (sizeof(index_t) + sizeof(T));
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t ka = a.row_ptr[usize(r)]; ka < a.row_ptr[usize(r) + 1];
         ++ka) {
      const index_t k = a.col_idx[usize(ka)];
      const T av = a.values[usize(ka)];
      for (index_t kb = b.row_ptr[usize(k)]; kb < b.row_ptr[usize(k) + 1];
           ++kb)
        temps.push_back({r, b.col_idx[usize(kb)], av * b.values[usize(kb)]});
      expand.global_bytes_scattered += 32;  // B row segment start
      expand.global_bytes_coalesced +=
          static_cast<std::uint64_t>(b.row_length(k)) *
          (sizeof(index_t) + sizeof(T));
    }
  }
  // The shared per-entry pool cost (core/chunk.hpp): a (row, col, value)
  // temp record, identical to what the pool estimators charge.
  const std::size_t temp_bytes = kChunkEntryBytes<T>;
  expand.global_bytes_coalesced +=
      static_cast<std::uint64_t>(products) * temp_bytes;  // write temps
  expand.flops += 2 * static_cast<std::uint64_t>(products);

  // --- Global stable radix sort by (row, col) at static width: data makes
  // one global read+write round trip per 4-bit digit pass.
  const int bits = sim::bits_for(static_cast<std::uint64_t>(
                       std::max<index_t>(a.rows - 1, 0))) +
                   sim::bits_for(static_cast<std::uint64_t>(
                       std::max<index_t>(b.cols - 1, 0)));
  std::stable_sort(temps.begin(), temps.end(),
                   [](const Temp& x, const Temp& y) {
                     if (x.row != y.row) return x.row < y.row;
                     return x.col < y.col;
                   });
  sim::MetricCounters sort;
  sort.sort_pass_elements = static_cast<std::uint64_t>(products) *
                            static_cast<std::uint64_t>(sim::radix_passes(bits));
  sort.global_bytes_coalesced =
      2 * static_cast<std::uint64_t>(products) * temp_bytes *
      static_cast<std::uint64_t>(sim::radix_passes(bits));

  // --- Compression: one device-wide segmented scan + compacted write-out.
  Csr<T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  sim::MetricCounters compress;
  compress.scan_elements = static_cast<std::uint64_t>(products);
  compress.global_bytes_coalesced =
      static_cast<std::uint64_t>(products) * temp_bytes;
  for (std::size_t i = 0; i < temps.size();) {
    std::size_t j = i;
    T sum{};
    while (j < temps.size() && temps[j].row == temps[i].row &&
           temps[j].col == temps[i].col) {
      sum += temps[j].val;  // left-to-right in expansion order: deterministic
      ++j;
    }
    c.col_idx.push_back(temps[i].col);
    c.values.push_back(sum);
    c.row_ptr[static_cast<std::size_t>(temps[i].row) + 1]++;
    i = j;
  }
  for (index_t r = 0; r < a.rows; ++r)
    c.row_ptr[usize(r) + 1] += c.row_ptr[usize(r)];
  compress.global_bytes_coalesced +=
      static_cast<std::uint64_t>(c.nnz()) * (sizeof(index_t) + sizeof(T));

  if (stats) {
    *stats = SpgemmStats{};
    stats->intermediate_products = products;
    const int cap = dev.threads_per_block * 8;
    const auto blocks_of = [&](const sim::MetricCounters& m,
                               std::uint64_t items) {
      const std::size_t nblocks = static_cast<std::size_t>(
          std::max<std::uint64_t>(1, items / static_cast<std::uint64_t>(cap)));
      std::vector<sim::MetricCounters> per(nblocks);
      for (auto& bm : per) {
        bm = m;
        bm.global_bytes_coalesced /= nblocks;
        bm.global_bytes_scattered /= nblocks;
        bm.sort_pass_elements /= nblocks;
        bm.scan_elements /= nblocks;
        bm.flops /= nblocks;
      }
      return per;
    };
    const auto u64products = static_cast<std::uint64_t>(products);
    for (const auto& [name, m] :
         {std::pair<const char*, const sim::MetricCounters&>{"expand", expand},
          {"sort", sort},
          {"compress", compress}}) {
      const auto blocks = blocks_of(m, u64products);
      const auto t = sim::schedule_blocks(blocks, dev);
      stats->stage_times_s.emplace_back(name, t.time_s);
      stats->sim_time_s += t.time_s;
      for (const auto& bm : blocks) stats->metrics += bm;
      if (blocks.size() >= static_cast<std::size_t>(dev.num_sms))
        stats->multiprocessor_load =
            std::min(stats->multiprocessor_load, t.multiprocessor_load);
    }
    // Double-buffered global temp arrays — the strategy's memory downside.
    stats->pool_bytes = 2 * static_cast<std::size_t>(products) * temp_bytes;
    stats->pool_used_bytes = stats->pool_bytes;
    stats->helper_bytes = static_cast<std::size_t>(a.rows) * sizeof(index_t);
    stats->wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return c;
}

template Csr<float> esc_global_multiply(const Csr<float>&, const Csr<float>&,
                                        SpgemmStats*);
template Csr<double> esc_global_multiply(const Csr<double>&,
                                         const Csr<double>&, SpgemmStats*);
template class EscGlobal<float>;
template class EscGlobal<double>;

}  // namespace acs
