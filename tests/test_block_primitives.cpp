#include "sim/block_primitives.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace acs::sim {
namespace {

TEST(BlockPrimitives, InclusiveScanSum) {
  std::vector<int> v{1, 2, 3, 4};
  MetricCounters m;
  inclusive_scan(std::span<int>(v), m);
  EXPECT_EQ(v, (std::vector<int>{1, 3, 6, 10}));
  EXPECT_EQ(m.scan_elements, 4u);
}

TEST(BlockPrimitives, ExclusiveSumReturnsTotal) {
  std::vector<int> v{5, 1, 2};
  MetricCounters m;
  const int total = exclusive_sum(std::span<int>(v), m);
  EXPECT_EQ(total, 8);
  EXPECT_EQ(v, (std::vector<int>{0, 5, 6}));
}

TEST(BlockPrimitives, MaxScan) {
  std::vector<int> v{3, 1, 4, 1, 5, 2};
  MetricCounters m;
  inclusive_max_scan(std::span<int>(v), m);
  EXPECT_EQ(v, (std::vector<int>{3, 3, 4, 4, 5, 5}));
}

TEST(BlockPrimitives, RadixPasses) {
  EXPECT_EQ(radix_passes(0), 0);
  EXPECT_EQ(radix_passes(1), 1);
  EXPECT_EQ(radix_passes(4), 1);
  EXPECT_EQ(radix_passes(5), 2);
  EXPECT_EQ(radix_passes(32), 8);
}

TEST(BlockPrimitives, BitsFor) {
  EXPECT_EQ(bits_for(0), 0);
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(255), 8);
  EXPECT_EQ(bits_for(256), 9);
}

TEST(BlockPrimitives, RadixSortSortsAndCarriesPayload) {
  std::vector<std::uint64_t> keys{9, 3, 7, 3, 1};
  std::vector<int> payload{0, 1, 2, 3, 4};
  MetricCounters m;
  block_radix_sort(std::span(keys), std::span(payload), 4, m);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 3, 3, 7, 9}));
  EXPECT_EQ(payload, (std::vector<int>{4, 1, 3, 2, 0}));
}

TEST(BlockPrimitives, RadixSortIsStable) {
  // Equal keys must keep their input order — the property AC-SpGEMM's
  // bit-stability rests on.
  std::vector<std::uint64_t> keys{2, 1, 2, 1, 2};
  std::vector<int> payload{10, 11, 12, 13, 14};
  MetricCounters m;
  block_radix_sort(std::span(keys), std::span(payload), 2, m);
  EXPECT_EQ(payload, (std::vector<int>{11, 13, 10, 12, 14}));
}

TEST(BlockPrimitives, RadixSortWorkScalesWithBits) {
  std::vector<std::uint64_t> keys(256);
  std::vector<int> payload(256);
  std::iota(keys.rbegin(), keys.rend(), 0);
  MetricCounters narrow, wide;
  auto k1 = keys;
  auto p1 = payload;
  block_radix_sort(std::span(k1), std::span(p1), 8, narrow);
  auto k2 = keys;
  auto p2 = payload;
  block_radix_sort(std::span(k2), std::span(p2), 32, wide);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(narrow.sort_pass_elements, 256u * 2);
  EXPECT_EQ(wide.sort_pass_elements, 256u * 8);
}

TEST(BlockPrimitives, RadixSortRandomAgainstStdSort) {
  std::mt19937_64 rng(77);
  std::vector<std::uint64_t> keys(1000);
  for (auto& k : keys) k = rng() & 0xFFFFF;
  std::vector<int> payload(1000, 0);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  MetricCounters m;
  block_radix_sort(std::span(keys), std::span(payload), 20, m);
  EXPECT_EQ(keys, expect);
}

TEST(BlockPrimitives, RadixSortHandlesTinyInputs) {
  std::vector<std::uint64_t> empty;
  std::vector<int> payload;
  MetricCounters m;
  block_radix_sort(std::span(empty), std::span(payload), 10, m);
  std::vector<std::uint64_t> one{5};
  std::vector<int> p1{0};
  block_radix_sort(std::span(one), std::span(p1), 10, m);
  EXPECT_EQ(one[0], 5u);
}

TEST(BlockPrimitives, BlockedToStripedRoundtripLayout) {
  // 2 threads, 3 items each: blocked [a0 a1 a2 b0 b1 b2] ->
  // striped [a0 b0 a1 b1 a2 b2].
  std::vector<int> v{0, 1, 2, 10, 11, 12};
  MetricCounters m;
  blocked_to_striped(std::span(v), 2, m);
  EXPECT_EQ(v, (std::vector<int>{0, 10, 1, 11, 2, 12}));
}

TEST(BlockPrimitives, BlockedToStripedRejectsRaggedSize) {
  std::vector<int> v{1, 2, 3};
  MetricCounters m;
  EXPECT_THROW(blocked_to_striped(std::span(v), 2, m), std::invalid_argument);
}

}  // namespace
}  // namespace acs::sim
