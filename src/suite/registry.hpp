#pragma once
/// \file registry.hpp
/// Factory for the full set of SpGEMM implementations the paper's
/// evaluation compares: AC-SpGEMM plus cuSPARSE-, bhSparse-, RMerge-,
/// nsparse- and Kokkos-style baselines.

#include <memory>
#include <vector>

#include "baselines/algorithm.hpp"
#include "core/config.hpp"

namespace acs {

/// AC-SpGEMM behind the common benchmarking interface.
template <class T>
class AcSpgemmAlgorithm final : public SpgemmAlgorithm<T> {
 public:
  explicit AcSpgemmAlgorithm(Config cfg = {}) : cfg_(cfg) {}
  [[nodiscard]] std::string name() const override { return "AC-SpGEMM"; }
  [[nodiscard]] bool bit_stable() const override { return true; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override;

 private:
  Config cfg_;
};

/// The six GPU methods of the paper's Table 1/Figs. 5-12, in the paper's
/// plot order: AC-SpGEMM, cuSparse, bhSparse, RMerge, nsparse, Kokkos.
template <class T>
std::vector<std::unique_ptr<SpgemmAlgorithm<T>>> make_paper_algorithms(
    const Config& ac_config = {});

extern template class AcSpgemmAlgorithm<float>;
extern template class AcSpgemmAlgorithm<double>;
extern template std::vector<std::unique_ptr<SpgemmAlgorithm<float>>>
make_paper_algorithms(const Config&);
extern template std::vector<std::unique_ptr<SpgemmAlgorithm<double>>>
make_paper_algorithms(const Config&);

}  // namespace acs
