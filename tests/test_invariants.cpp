/// Runtime companions to the compile-time proofs in core/invariants.hpp and
/// tune/invariants.hpp: the 15-bit compaction boundary from both sides, a
/// differential check of compact_sorted at full counter width, and the
/// agreement between the constexpr `fits_device` mirror and what
/// Pipeline::validate actually accepts.

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/acspgemm.hpp"
#include "core/chunk.hpp"
#include "core/compaction.hpp"
#include "core/invariants.hpp"
#include "matrix/generators.hpp"
#include "tune/invariants.hpp"
#include "tune/tuner.hpp"

namespace acs {
namespace {

namespace cd = compaction_detail;

// A codec wide enough to give every one of 32768 columns a distinct key.
KeyCodec wide_codec() { return KeyCodec::make(0, 3, 0, 65535, true, 0, 0); }

// ---------------------------------------------------------------------------
// 15-bit counter boundary (satellite of DESIGN.md §10): exactly kCounterMask
// elements pass; one more trips the runtime guard even under NDEBUG.
// ---------------------------------------------------------------------------

TEST(CompactionBoundary, ExactCounterMaskDistinctKeysPasses) {
  const auto c = wide_codec();
  const auto n = static_cast<std::size_t>(cd::kCounterMask);
  std::vector<std::uint64_t> keys(n);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = c.encode(0, static_cast<index_t>(i));
    vals[i] = static_cast<double>(i);
  }
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  // Nothing combines, so the row compacts to exactly kCounterMask entries —
  // the largest per-row count the packed word can represent.
  ASSERT_EQ(out.keys.size(), n);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].second, static_cast<index_t>(cd::kCounterMask));
  EXPECT_EQ(out.vals.front(), 0.0);
  EXPECT_EQ(out.vals.back(), static_cast<double>(n - 1));
}

TEST(CompactionBoundary, ExactCounterMaskDuplicatesPasses) {
  const auto c = wide_codec();
  const auto n = static_cast<std::size_t>(cd::kCounterMask);
  std::vector<std::uint64_t> keys(n, c.encode(1, 7));
  std::vector<double> vals(n, 0.5);
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  ASSERT_EQ(out.keys.size(), 1u);
  EXPECT_EQ(out.vals[0], 0.5 * static_cast<double>(n));
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0], (std::pair<index_t, index_t>{1, 1}));
}

TEST(CompactionBoundary, OneOverCounterMaskThrows) {
  const auto c = wide_codec();
  const auto n = static_cast<std::size_t>(cd::kCounterMask) + 1;
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = c.encode(0, static_cast<index_t>(i));
  std::vector<double> vals(n, 1.0);
  sim::MetricCounters m;
  EXPECT_THROW(compact_sorted<double>(keys, vals, c, m), std::length_error);
}

// Differential check at full width: a buffer mixing runs of duplicates and
// distinct keys, sized exactly at the counter limit, must agree with a
// plain sequential reference on every output.
TEST(CompactionBoundary, DifferentialAtFullWidth) {
  const auto c = wide_codec();
  const auto n = static_cast<std::size_t>(cd::kCounterMask);
  std::vector<std::uint64_t> keys(n);
  std::vector<double> vals(n);
  // Deterministic duplicate pattern: key advances on every i not divisible
  // by 3, so ~2/3 of the keys are distinct, spread over two rows.
  index_t col = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == n / 2) col = 0;  // second row restarts the column walk
    const auto row = static_cast<index_t>(i < n / 2 ? 0 : 2);
    keys[i] = c.encode(row, col);
    vals[i] = static_cast<double>(i % 17) - 8.0;
    if (i % 3 != 0) ++col;
  }
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);

  // Reference: sequential left-to-right accumulation of equal-key runs.
  std::vector<std::uint64_t> ref_keys;
  std::vector<double> ref_vals;
  for (std::size_t i = 0; i < n; ++i) {
    if (ref_keys.empty() || ref_keys.back() != keys[i]) {
      ref_keys.push_back(keys[i]);
      ref_vals.push_back(vals[i]);
    } else {
      ref_vals.back() += vals[i];
    }
  }
  ASSERT_EQ(out.keys, ref_keys);
  ASSERT_EQ(out.vals, ref_vals);  // exact: same order of additions
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0].second + out.rows[1].second,
            static_cast<index_t>(ref_keys.size()));
}

// ---------------------------------------------------------------------------
// fits_device is a faithful mirror of Pipeline::validate: whatever the
// constexpr filter accepts must multiply, whatever it rejects must throw.
// ---------------------------------------------------------------------------

TEST(FeasibilityMirror, FitsDeviceMatchesPipelineValidate) {
  const auto a = gen_uniform_random<double>(50, 50, 3.0, 1.0, 42);

  const auto probe = [&](Config cfg) {
    const bool fits = tune::fits_device(cfg, sizeof(double));
    bool ran = true;
    try {
      (void)multiply(a, a, cfg);
    } catch (const std::invalid_argument&) {
      ran = false;
    } catch (const std::length_error&) {
      ran = false;  // scratchpad overflow surfaces as length_error
    }
    EXPECT_EQ(fits, ran) << "threads=" << cfg.threads
                         << " npb=" << cfg.nnz_per_block
                         << " ept=" << cfg.elements_per_thread
                         << " retain=" << cfg.retain_per_thread;
  };

  Config cfg;
  probe(cfg);  // default: feasible

  cfg = {};
  cfg.nnz_per_block = 1024;  // the tuple tune/invariants.hpp proves infeasible
  probe(cfg);

  cfg = {};
  cfg.threads = 4096;  // temp_capacity 32768: one past the 15-bit counters
  probe(cfg);

  cfg = {};
  cfg.threads = 16;
  cfg.elements_per_thread = 4;
  cfg.nnz_per_block = 8192;  // WD offsets alone overflow the scratchpad
  probe(cfg);

  cfg = {};
  cfg.retain_per_thread = 8;  // retain == elements_per_thread
  probe(cfg);

  cfg = {};
  cfg.threads = 64;
  cfg.elements_per_thread = 4;
  cfg.retain_per_thread = 2;
  probe(cfg);  // small but feasible
}

// The compile-time chunk accounting agrees with a chunk built at run time.
TEST(ChunkAccounting, RuntimeMatchesConstants) {
  Chunk<double> c;
  c.rows = {0, 1, 2};
  c.row_offsets = {0, 1, 2, 4};
  c.cols = {3, 1, 0, 2};
  c.vals = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(c.byte_size(), kChunkHeaderBytes + 3 * sizeof(index_t) +
                               4 * (sizeof(index_t) + sizeof(double)));
  Chunk<double> p;
  p.is_long_row = true;
  p.long_len = 12345;
  EXPECT_EQ(p.byte_size(), kPointerChunkBytes);
}

}  // namespace
}  // namespace acs
