#include <gtest/gtest.h>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc_global.hpp"
#include "baselines/kokkos_like.hpp"
#include "baselines/nsparse_like.hpp"
#include "baselines/rmerge.hpp"
#include "baselines/spa_gustavson.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"

namespace acs {
namespace {

using testutil::quantize;

/// Every baseline must agree exactly with the oracle on quantized values.
template <class Fn>
void check_against_oracle(Fn&& fn) {
  const auto square = quantize(gen_powerlaw<double>(700, 700, 6.0, 1.7, 250, 51));
  const auto ref_sq = spa_multiply(square, square);
  const auto c_sq = fn(square, square);
  ASSERT_EQ(c_sq.validate(), "");
  EXPECT_TRUE(c_sq.equals_exact(ref_sq));

  const auto rect = quantize(gen_uniform_random<double>(250, 900, 10.0, 4.0, 52));
  const auto rect_t = transpose(rect);
  const auto ref_r = spa_multiply(rect, rect_t);
  const auto c_r = fn(rect, rect_t);
  EXPECT_TRUE(c_r.equals_exact(ref_r));

  Csr<double> empty;
  empty.rows = empty.cols = 6;
  empty.row_ptr.assign(7, 0);
  EXPECT_EQ(fn(empty, empty).nnz(), 0);
}

TEST(Baselines, EscGlobalMatchesOracle) {
  check_against_oracle([](const auto& a, const auto& b) {
    return esc_global_multiply(a, b);
  });
}

TEST(Baselines, NsparseMatchesOracle) {
  check_against_oracle([](const auto& a, const auto& b) {
    return nsparse_multiply(a, b);
  });
}

TEST(Baselines, CusparseLikeMatchesOracle) {
  check_against_oracle([](const auto& a, const auto& b) {
    return cusparse_like_multiply(a, b);
  });
}

TEST(Baselines, RmergeMatchesOracle) {
  check_against_oracle([](const auto& a, const auto& b) {
    return rmerge_multiply(a, b);
  });
}

TEST(Baselines, BhsparseMatchesOracle) {
  check_against_oracle([](const auto& a, const auto& b) {
    return bhsparse_multiply(a, b);
  });
}

TEST(Baselines, KokkosLikeMatchesOracle) {
  check_against_oracle([](const auto& a, const auto& b) {
    return kokkos_like_multiply(a, b);
  });
}

TEST(Baselines, RmergeHandlesVeryLongRowsOfA) {
  // Rows far beyond the merge width force multiple factorization levels.
  const auto a = quantize(gen_uniform_random<double>(60, 500, 150.0, 30.0, 53));
  const auto b = quantize(gen_uniform_random<double>(500, 300, 4.0, 1.0, 54));
  EXPECT_TRUE(rmerge_multiply(a, b).equals_exact(spa_multiply(a, b)));
}

TEST(Baselines, HashMethodsNotBitStableUnderScheduleChange) {
  // The paper's dagger: hash-based methods give different floating-point
  // results under different hardware schedules. Seeds emulate schedules.
  auto m = gen_powerlaw<float>(600, 600, 8.0, 1.7, 200, 55);
  for (std::size_t i = 0; i < m.values.size(); ++i)
    m.values[i] *= ((i % 5 == 0) ? 1e5f : 1e-5f);

  const auto c0 = nsparse_multiply(m, m, nullptr, 1);
  const auto c1 = nsparse_multiply(m, m, nullptr, 2);
  EXPECT_EQ(c0.col_idx, c1.col_idx);  // structure is schedule-independent
  EXPECT_FALSE(c0.values == c1.values);

  const auto k0 = kokkos_like_multiply(m, m, nullptr, 1);
  const auto k1 = kokkos_like_multiply(m, m, nullptr, 2);
  EXPECT_FALSE(k0.values == k1.values);

  const auto u0 = cusparse_like_multiply(m, m, nullptr, 1);
  const auto u1 = cusparse_like_multiply(m, m, nullptr, 2);
  EXPECT_FALSE(u0.values == u1.values);
}

TEST(Baselines, MergeBasedMethodsAreBitStable) {
  auto m = gen_powerlaw<float>(500, 500, 7.0, 1.7, 150, 56);
  for (std::size_t i = 0; i < m.values.size(); ++i)
    m.values[i] *= ((i % 5 == 0) ? 1e5f : 1e-5f);
  EXPECT_TRUE(rmerge_multiply(m, m).equals_exact(rmerge_multiply(m, m)));
  EXPECT_TRUE(bhsparse_multiply(m, m).equals_exact(bhsparse_multiply(m, m)));
  EXPECT_TRUE(esc_global_multiply(m, m).equals_exact(esc_global_multiply(m, m)));
}

TEST(Baselines, StatsHaveDistinctCostProfiles) {
  const auto m = gen_uniform_random<double>(2000, 2000, 8.0, 3.0, 57);
  SpgemmStats esc, hash;
  esc_global_multiply(m, m, &esc);
  nsparse_multiply(m, m, &hash);
  // ESC-global round-trips every product through global memory; the hash
  // method keeps tables in scratchpad — its global traffic must be far
  // smaller and its pool negligible.
  EXPECT_GT(esc.metrics.global_bytes_coalesced,
            4 * hash.metrics.global_bytes_coalesced);
  EXPECT_GT(esc.pool_bytes, 10 * (hash.pool_bytes + 1));
  EXPECT_GT(hash.metrics.hash_probes, 0u);
  EXPECT_EQ(esc.metrics.hash_probes, 0u);
}

TEST(Baselines, DimensionMismatchThrowsEverywhere) {
  const auto a = gen_uniform_random<double>(10, 20, 3.0, 1.0, 58);
  EXPECT_THROW(esc_global_multiply(a, a), std::invalid_argument);
  EXPECT_THROW(nsparse_multiply(a, a), std::invalid_argument);
  EXPECT_THROW(cusparse_like_multiply(a, a), std::invalid_argument);
  EXPECT_THROW(rmerge_multiply(a, a), std::invalid_argument);
  EXPECT_THROW(bhsparse_multiply(a, a), std::invalid_argument);
  EXPECT_THROW(kokkos_like_multiply(a, a), std::invalid_argument);
}

}  // namespace
}  // namespace acs
