#include "tune/tuner.hpp"

#include <algorithm>
#include <tuple>

#include "tune/invariants.hpp"  // compile-time proofs ride every build

namespace acs::tune {

const char* to_string(TuningMode mode) {
  switch (mode) {
    case TuningMode::kOff: return "off";
    case TuningMode::kStaticCostModel: return "static-cost-model";
    case TuningMode::kFeedback: return "feedback";
  }
  return "?";
}

namespace {

/// Deterministic tie-break: prefer the lexicographically smaller parameter
/// tuple so equal-cost candidates rank identically everywhere.
std::tuple<int, int, index_t, int> key_of(const TunedParams& p) {
  return {p.nnz_per_block, p.retain_per_thread, p.long_row_threshold,
          p.path_merge_max_chunks};
}

template <class Vec, class V>
void push_unique(Vec& v, V value) {
  if (std::find(v.begin(), v.end(), value) == v.end()) v.push_back(value);
}

}  // namespace

std::vector<Candidate> AutoTuner::rank(const TuneFeatures& f,
                                       const Config& base,
                                       std::size_t value_bytes,
                                       double products_override) const {
  // Each axis always contains the base Config's own value, so the identity
  // overlay is in the grid and tuning can never model-predict worse than
  // the default.
  std::vector<int> npbs = opts_.nnz_per_block;
  push_unique(npbs, base.nnz_per_block);
  std::vector<int> retains = opts_.retain_per_thread;
  push_unique(retains, base.retain_per_thread);
  std::vector<int> pmcs = opts_.path_merge_max_chunks;
  push_unique(pmcs, base.path_merge_max_chunks);
  std::vector<index_t> thresholds{base.long_row_threshold};
  if (opts_.tune_long_row_threshold && base.long_row_handling) {
    push_unique(thresholds, index_t{0});  // auto (= temp_capacity())
    if (f.b_rows.p90 > 0) push_unique(thresholds, f.b_rows.p90);
    if (f.b_rows.p99 > 0) push_unique(thresholds, f.b_rows.p99);
  }

  std::vector<Candidate> out;
  out.reserve(npbs.size() * retains.size() * thresholds.size() * pmcs.size());
  for (int npb : npbs) {
    for (int retain : retains) {
      for (index_t threshold : thresholds) {
        for (int pmc : pmcs) {
          Candidate c;
          c.params.nnz_per_block = npb;
          c.params.retain_per_thread = retain;
          c.params.long_row_threshold = threshold;
          c.params.path_merge_max_chunks = pmc;
          c.params.valid = true;
          Config cfg = base;
          c.params.apply(cfg);
          if (!fits_device(cfg, value_bytes)) continue;
          c.cost = predict_cost(f, cfg, value_bytes, products_override);
          out.push_back(std::move(c));
        }
      }
    }
  }
  const bool by_work = opts_.objective == TuneObjective::kThroughput;
  std::sort(out.begin(), out.end(),
            [by_work](const Candidate& x, const Candidate& y) {
              const double cx = by_work ? x.cost.serial_s : x.cost.total_s;
              const double cy = by_work ? y.cost.serial_s : y.cost.total_s;
              if (cx != cy) return cx < cy;
              return key_of(x.params) < key_of(y.params);
            });
  return out;
}

TunedParams AutoTuner::choose(const TuneFeatures& f, const Config& base,
                              std::size_t value_bytes,
                              double products_override) const {
  auto ranked = rank(f, base, value_bytes, products_override);
  if (ranked.empty()) return {};
  return ranked.front().params;
}

}  // namespace acs::tune
