#include "sim/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"
#include "trace/trace.hpp"

namespace acs::sim {

/// Parked worker threads plus the state of the current dispatch. Workers
/// wake on a generation bump, pull block ids from a shared atomic counter
/// (the GPU's global block dispatcher) and signal completion when the last
/// one runs out of blocks.
struct BlockScheduler::Pool {
  acs::Mutex pool_m;
  acs::CondVar work_cv;
  acs::CondVar done_cv;
  std::uint64_t generation ACS_GUARDED_BY(pool_m) = 0;
  std::size_t num_blocks ACS_GUARDED_BY(pool_m) = 0;
  const std::function<void(std::size_t)>* body ACS_GUARDED_BY(pool_m) = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t running ACS_GUARDED_BY(pool_m) = 0;
  std::exception_ptr error ACS_GUARDED_BY(pool_m);
  bool stop ACS_GUARDED_BY(pool_m) = false;
  std::vector<std::thread> workers;

  explicit Pool(unsigned n) {
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      workers.emplace_back([this] { work_loop(); });
  }

  ~Pool() {
    {
      acs::MutexLock lock(pool_m);
      stop = true;
    }
    work_cv.notify_all();
    for (auto& t : workers) t.join();
  }

  void work_loop() ACS_EXCLUDES(pool_m) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job;
      std::size_t blocks;
      {
        acs::MutexLock lock(pool_m);
        while (!stop && generation == seen) work_cv.wait(lock);
        if (stop) return;
        seen = generation;
        job = body;
        // Copy the dispatch size out: the ticket loop below runs unlocked,
        // and `num_blocks` stays owned by pool_m until the next generation.
        blocks = num_blocks;
      }
      for (;;) {
        // mo: work-stealing ticket; block inputs/outputs are published by
        // mo: the generation handshake under the pool mutex, not by this.
        const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) break;
        try {
          (*job)(b);
        } catch (...) {
          acs::MutexLock lock(pool_m);
          if (!error) error = std::current_exception();
          break;
        }
      }
      {
        acs::MutexLock lock(pool_m);
        if (--running == 0) done_cv.notify_one();
      }
    }
  }
};

BlockScheduler::BlockScheduler(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = std::max(1u, std::thread::hardware_concurrency());
}

BlockScheduler::~BlockScheduler() = default;

/// Execute one block, feeding its host time into the trace session's block
/// attribution counters when tracing is live.
void BlockScheduler::run_block(const std::function<void(std::size_t)>& body,
                               std::size_t block) const {
  if (!trace_) {
    body(block);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  body(block);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  trace::Counters& c = trace_->counters();
  // mo: trace counters; consumers snapshot them after the run joins.
  c.blocks_executed.fetch_add(1, std::memory_order_relaxed);
  // mo: same as above.
  c.block_time_ns_sum.fetch_add(ns, std::memory_order_relaxed);
  trace::Counters::raise(c.block_time_ns_max, ns);
}

void BlockScheduler::for_each_block(
    std::size_t num_blocks, const std::function<void(std::size_t)>& body) const {
  if (num_blocks == 0) return;
  if (threads_ <= 1 || num_blocks == 1) {
    for (std::size_t b = 0; b < num_blocks; ++b) run_block(body, b);
    return;
  }

  if (!pool_) pool_ = std::make_unique<Pool>(threads_);
  Pool& p = *pool_;

  // Route the pool through the same attribution wrapper. The extra
  // std::function hop exists only while tracing (body is forwarded
  // untouched otherwise).
  const std::function<void(std::size_t)> timed =
      trace_ ? std::function<void(std::size_t)>(
                   [&](std::size_t b) { run_block(body, b); })
             : std::function<void(std::size_t)>();

  std::exception_ptr err;
  {
    acs::MutexLock lock(p.pool_m);
    p.num_blocks = num_blocks;
    p.body = trace_ ? &timed : &body;
    // mo: reset is published to workers by the generation bump + cv under
    // mo: the mutex held here; the counter itself needs no ordering.
    p.next.store(0, std::memory_order_relaxed);
    p.running = p.workers.size();
    p.error = nullptr;
    ++p.generation;
    p.work_cv.notify_all();
    while (p.running != 0) p.done_cv.wait(lock);
    err = p.error;
    p.body = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace acs::sim
