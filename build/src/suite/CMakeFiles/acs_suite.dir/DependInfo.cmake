
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/bench_runner.cpp" "src/suite/CMakeFiles/acs_suite.dir/bench_runner.cpp.o" "gcc" "src/suite/CMakeFiles/acs_suite.dir/bench_runner.cpp.o.d"
  "/root/repo/src/suite/hybrid.cpp" "src/suite/CMakeFiles/acs_suite.dir/hybrid.cpp.o" "gcc" "src/suite/CMakeFiles/acs_suite.dir/hybrid.cpp.o.d"
  "/root/repo/src/suite/registry.cpp" "src/suite/CMakeFiles/acs_suite.dir/registry.cpp.o" "gcc" "src/suite/CMakeFiles/acs_suite.dir/registry.cpp.o.d"
  "/root/repo/src/suite/suite.cpp" "src/suite/CMakeFiles/acs_suite.dir/suite.cpp.o" "gcc" "src/suite/CMakeFiles/acs_suite.dir/suite.cpp.o.d"
  "/root/repo/src/suite/table.cpp" "src/suite/CMakeFiles/acs_suite.dir/table.cpp.o" "gcc" "src/suite/CMakeFiles/acs_suite.dir/table.cpp.o.d"
  "/root/repo/src/suite/verify.cpp" "src/suite/CMakeFiles/acs_suite.dir/verify.cpp.o" "gcc" "src/suite/CMakeFiles/acs_suite.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/acs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/acs_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
