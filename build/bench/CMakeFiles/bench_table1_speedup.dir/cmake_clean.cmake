file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_speedup.dir/bench_table1_speedup.cpp.o"
  "CMakeFiles/bench_table1_speedup.dir/bench_table1_speedup.cpp.o.d"
  "bench_table1_speedup"
  "bench_table1_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
