#include "suite/bench_runner.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "core/acspgemm.hpp"
#include "matrix/stats.hpp"
#include "matrix/transpose.hpp"

namespace acs {

template <class T>
BenchMeasurement run_benchmark(const SuiteEntry& entry,
                               const SpgemmAlgorithm<T>& algo) {
  const Csr<T> a = build_matrix<T>(entry);
  const Csr<T> b = entry.square ? a : transpose(a);

  BenchMeasurement m;
  m.matrix = entry.name;
  m.algorithm = algo.name();
  m.precision = sizeof(T) == 4 ? "float" : "double";
  m.nnz_a = a.nnz();
  m.avg_row_len_a = row_stats(a).avg_len;
  m.temp_products = intermediate_products(a, b);

  const Csr<T> c = algo.multiply(a, b, &m.stats);
  m.nnz_c = c.nnz();
  m.gflops = m.stats.gflops();
  m.sim_time_s = m.stats.sim_time_s;
  return m;
}

template <class T>
std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry& entry,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<T>>>& algos) {
  std::vector<BenchMeasurement> out;
  out.reserve(algos.size());
  for (const auto& algo : algos) out.push_back(run_benchmark(entry, *algo));
  return out;
}

template <class T>
BatchBenchResult run_engine_batch(
    runtime::Engine<T>& engine,
    const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs, const Config& cfg,
    const std::string& label) {
  const auto arena_before = engine.arena_counters();

  BatchBenchResult r;
  r.label = label;
  r.jobs = pairs.size();
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = engine.multiply_batch(pairs, cfg);
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.jobs_per_s = r.wall_s > 0.0 ? static_cast<double>(r.jobs) / r.wall_s : 0.0;

  std::size_t hits = 0;
  for (const auto& jr : results) {
    if (jr.failed()) continue;
    r.sim_time_s += jr.stats.sim_time_s;
    r.restarts += static_cast<std::size_t>(std::max(0, jr.stats.restarts));
    r.pool_reused_bytes += jr.pool_reused_bytes;
    r.metrics += jr.metrics;
    if (jr.plan_hit) ++hits;
    if (jr.tuned.valid) ++r.tuned_jobs;
  }
  r.plan_hit_rate =
      r.jobs == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(r.jobs);
  r.pool_fresh_bytes =
      engine.arena_counters().fresh_bytes - arena_before.fresh_bytes;
  return r;
}

template <class T>
BatchBenchResult run_naive_batch(
    const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs, const Config& cfg,
    const std::string& label) {
  BatchBenchResult r;
  r.label = label;
  r.jobs = pairs.size();
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [a, b] : pairs) {
    SpgemmStats stats;
    const Csr<T> c = multiply(a, b, cfg, &stats);
    r.sim_time_s += stats.sim_time_s;
    r.restarts += static_cast<std::size_t>(std::max(0, stats.restarts));
    r.pool_fresh_bytes += stats.pool_bytes;  // every pool is a fresh allocation
    r.metrics += to_metrics_snapshot(stats);
  }
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.jobs_per_s = r.wall_s > 0.0 ? static_cast<double>(r.jobs) / r.wall_s : 0.0;
  return r;
}

double harmonic_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double denom = 0.0;
  for (double x : v) denom += 1.0 / x;
  return static_cast<double>(v.size()) / denom;
}

std::string bench_out_path(const std::string& name) {
  std::error_code ec;  // best-effort: an unwritable cwd surfaces at open()
  std::filesystem::create_directories("bench_out", ec);
  return (std::filesystem::path("bench_out") / name).string();
}

template BatchBenchResult run_engine_batch(
    runtime::Engine<float>&,
    const std::vector<std::pair<Csr<float>, Csr<float>>>&, const Config&,
    const std::string&);
template BatchBenchResult run_engine_batch(
    runtime::Engine<double>&,
    const std::vector<std::pair<Csr<double>, Csr<double>>>&, const Config&,
    const std::string&);
template BatchBenchResult run_naive_batch(
    const std::vector<std::pair<Csr<float>, Csr<float>>>&, const Config&,
    const std::string&);
template BatchBenchResult run_naive_batch(
    const std::vector<std::pair<Csr<double>, Csr<double>>>&, const Config&,
    const std::string&);
template BenchMeasurement run_benchmark(const SuiteEntry&,
                                        const SpgemmAlgorithm<float>&);
template BenchMeasurement run_benchmark(const SuiteEntry&,
                                        const SpgemmAlgorithm<double>&);
template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<float>>>&);
template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<double>>>&);

}  // namespace acs
