file(REMOVE_RECURSE
  "CMakeFiles/test_spa.dir/test_spa.cpp.o"
  "CMakeFiles/test_spa.dir/test_spa.cpp.o.d"
  "test_spa"
  "test_spa.pdb"
  "test_spa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
