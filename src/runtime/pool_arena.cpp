#include "runtime/pool_arena.hpp"

#include <algorithm>

namespace acs::runtime {

PoolArena::Lease PoolArena::acquire(std::size_t bytes) {
  acs::MutexLock lock(m_);
  ++counters_.acquires;
  ++counters_.outstanding;

  Lease lease;
  // Best fit: the smallest slab that covers the request, handed out whole.
  if (const auto it = slabs_.lower_bound(bytes); it != slabs_.end()) {
    lease.bytes = *it;
    lease.reused_bytes = bytes;
    slabs_.erase(it);
    ++counters_.reuse_hits;
    counters_.reused_bytes += bytes;
    return lease;
  }
  // No slab is big enough: grow the largest one instead of allocating a
  // disjoint fresh pool (the paper's restart growth, amortized).
  if (!slabs_.empty()) {
    const auto largest = std::prev(slabs_.end());
    lease.reused_bytes = *largest;
    counters_.reused_bytes += *largest;
    counters_.fresh_bytes += bytes - *largest;
    slabs_.erase(largest);
    ++counters_.reuse_hits;
  } else {
    counters_.fresh_bytes += bytes;
  }
  lease.bytes = bytes;
  return lease;
}

void PoolArena::release(std::size_t final_bytes) {
  acs::MutexLock lock(m_);
  slabs_.insert(final_bytes);
  counters_.high_water_bytes =
      std::max(counters_.high_water_bytes, final_bytes);
  if (counters_.outstanding > 0) --counters_.outstanding;
}

PoolArena::Counters PoolArena::counters() const {
  acs::MutexLock lock(m_);
  return counters_;
}

std::size_t PoolArena::free_bytes() const {
  acs::MutexLock lock(m_);
  std::size_t total = 0;
  for (const std::size_t s : slabs_) total += s;
  return total;
}

void PoolArena::clear() {
  acs::MutexLock lock(m_);
  slabs_.clear();
  counters_ = Counters{};
}

}  // namespace acs::runtime
