#include "runtime/plan_cache.hpp"

#include <algorithm>
#include <utility>

namespace acs::runtime {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool PlanCache::lookup(const Fingerprint& key, SpgemmPlan& plan) {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  plan = it->second->plan;
  ++counters_.hits;
  return true;
}

void PlanCache::store(const Fingerprint& key, SpgemmPlan plan) {
  std::lock_guard<std::mutex> lock(m_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->plan = std::move(plan);
    ++counters_.refreshes;
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_.emplace(key, lru_.begin());
  ++counters_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

PlanCache::Counters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(m_);
  return counters_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(m_);
  lru_.clear();
  index_.clear();
  counters_ = Counters{};
}

}  // namespace acs::runtime
