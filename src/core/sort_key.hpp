#pragma once
/// \file sort_key.hpp
/// Sort-key packing with the paper's dynamic bit reduction (Section 3.2.3):
/// row ids are remapped through a per-block dictionary and offset by the
/// minimum row present; column ids are offset by the minimum column fetched
/// from B. The resulting key width determines the number of radix-sort
/// passes, which is the work the optimization saves.

#include <cstdint>

#include "matrix/types.hpp"
#include "sim/block_primitives.hpp"

namespace acs {

class KeyCodec {
 public:
  /// Build a codec for local rows in [min_row, max_row] and columns in
  /// [min_col, max_col]. With `dynamic` off, the full static ranges
  /// [0, static_row_max] × [0, static_col_max] are encoded instead.
  static constexpr KeyCodec make(index_t min_row, index_t max_row,
                                 index_t min_col, index_t max_col, bool dynamic,
                                 index_t static_row_max,
                                 index_t static_col_max) {
    KeyCodec c;
    if (dynamic) {
      c.row_base_ = min_row;
      c.col_base_ = min_col;
      c.row_bits_ = sim::bits_for(static_cast<std::uint64_t>(max_row - min_row));
      c.col_bits_ = sim::bits_for(static_cast<std::uint64_t>(max_col - min_col));
    } else {
      c.row_base_ = 0;
      c.col_base_ = 0;
      c.row_bits_ = sim::bits_for(static_cast<std::uint64_t>(static_row_max));
      c.col_bits_ = sim::bits_for(static_cast<std::uint64_t>(static_col_max));
    }
    return c;
  }

  [[nodiscard]] constexpr std::uint64_t encode(index_t local_row,
                                               index_t col) const {
    return (static_cast<std::uint64_t>(local_row - row_base_) << col_bits_) |
           static_cast<std::uint64_t>(col - col_base_);
  }

  [[nodiscard]] constexpr index_t row_of(std::uint64_t key) const {
    return static_cast<index_t>(key >> col_bits_) + row_base_;
  }

  [[nodiscard]] constexpr index_t col_of(std::uint64_t key) const {
    return static_cast<index_t>(key & ((std::uint64_t{1} << col_bits_) - 1)) +
           col_base_;
  }

  [[nodiscard]] constexpr bool same_row(std::uint64_t a,
                                        std::uint64_t b) const {
    return (a >> col_bits_) == (b >> col_bits_);
  }

  /// Total sorted bits — the quantity that drives radix-sort cost. The
  /// paper's example: 256 threads × 2 NNZ_PER_THREAD needs 9 row bits, so a
  /// 32-bit key covers matrices up to 2^23 columns.
  [[nodiscard]] constexpr int total_bits() const {
    return row_bits_ + col_bits_;
  }
  [[nodiscard]] constexpr int row_bits() const { return row_bits_; }
  [[nodiscard]] constexpr int col_bits() const { return col_bits_; }

 private:
  index_t row_base_ = 0;
  index_t col_base_ = 0;
  int row_bits_ = 0;
  int col_bits_ = 0;
};

}  // namespace acs
