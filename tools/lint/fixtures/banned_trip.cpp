// Fixture: banned calls in library code — the rule must flag all three.
#include <cstdio>
#include <cstdlib>
#include <ctime>

int noisy_random_now() {
  std::printf("side channel\n");
  const int r = std::rand();
  return r + static_cast<int>(time(nullptr));
}
