#include "tune/tuner.hpp"

#include <algorithm>
#include <tuple>

#include "tune/invariants.hpp"  // compile-time proofs ride every build

namespace acs::tune {

const char* to_string(TuningMode mode) {
  switch (mode) {
    case TuningMode::kOff: return "off";
    case TuningMode::kStaticCostModel: return "static-cost-model";
    case TuningMode::kFeedback: return "feedback";
  }
  return "?";
}

TunerOptions default_tuner_options(arch::ArchId arch) {
  TunerOptions opts;
  if (arch == arch::ArchId::kSimBigDevice)
    opts.nnz_per_block.assign(std::begin(kBigDeviceNnzPerBlockGrid),
                              std::end(kBigDeviceNnzPerBlockGrid));
  return opts;
}

namespace {

/// Deterministic tie-break: prefer the lexicographically smaller parameter
/// tuple so equal-cost candidates rank identically everywhere.
std::tuple<int, int, index_t, int> key_of(const TunedParams& p) {
  return {p.nnz_per_block, p.retain_per_thread, p.long_row_threshold,
          p.path_merge_max_chunks};
}

template <class Vec, class V>
void push_unique(Vec& v, V value) {
  if (std::find(v.begin(), v.end(), value) == v.end()) v.push_back(value);
}

/// Candidate grid axes for one job. Each axis always contains the base
/// Config's own value, so the identity overlay is in the grid and tuning
/// can never model-predict worse than the default.
struct GridAxes {
  std::vector<int> npbs;
  std::vector<int> retains;
  std::vector<int> pmcs;
  std::vector<index_t> thresholds;
};

GridAxes build_axes(const TunerOptions& opts, const TuneFeatures& f,
                    const Config& base) {
  GridAxes g;
  g.npbs = opts.nnz_per_block;
  push_unique(g.npbs, base.nnz_per_block);
  g.retains = opts.retain_per_thread;
  push_unique(g.retains, base.retain_per_thread);
  g.pmcs = opts.path_merge_max_chunks;
  push_unique(g.pmcs, base.path_merge_max_chunks);
  g.thresholds.push_back(base.long_row_threshold);
  if (opts.tune_long_row_threshold && base.long_row_handling) {
    push_unique(g.thresholds, index_t{0});  // auto (= temp_capacity())
    if (f.b_rows.p90 > 0) push_unique(g.thresholds, f.b_rows.p90);
    if (f.b_rows.p99 > 0) push_unique(g.thresholds, f.b_rows.p99);
  }
  return g;
}

/// Shared enumerate-prune-price-sort loop of `rank` and `rank_budgeted`.
/// `max_candidates` bounds the feasible candidates priced (0 = all);
/// `simulate_makespan` = false is the predictor-only path, which always
/// ranks by `serial_s` (the makespan is not computed).
std::vector<Candidate> rank_impl(const TunerOptions& opts,
                                 const TuneFeatures& f, const Config& base,
                                 std::size_t value_bytes,
                                 double products_override,
                                 std::size_t max_candidates,
                                 bool simulate_makespan) {
  const GridAxes g = build_axes(opts, f, base);
  std::vector<Candidate> out;
  out.reserve(g.npbs.size() * g.retains.size() * g.thresholds.size() *
              g.pmcs.size());
  const auto budget_left = [&] {
    return max_candidates == 0 || out.size() < max_candidates;
  };
  for (std::size_t i = 0; i < g.npbs.size() && budget_left(); ++i) {
    for (std::size_t j = 0; j < g.retains.size() && budget_left(); ++j) {
      for (std::size_t k = 0; k < g.thresholds.size() && budget_left(); ++k) {
        for (std::size_t l = 0; l < g.pmcs.size() && budget_left(); ++l) {
          Candidate c;
          c.params.nnz_per_block = g.npbs[i];
          c.params.retain_per_thread = g.retains[j];
          c.params.long_row_threshold = g.thresholds[k];
          c.params.path_merge_max_chunks = g.pmcs[l];
          c.params.valid = true;
          Config cfg = base;
          c.params.apply(cfg);
          if (!fits_device(cfg, value_bytes)) continue;
          c.cost = predict_cost(f, cfg, value_bytes, products_override,
                                simulate_makespan);
          out.push_back(std::move(c));
        }
      }
    }
  }
  const bool by_work =
      !simulate_makespan || opts.objective == TuneObjective::kThroughput;
  std::sort(out.begin(), out.end(),
            [by_work](const Candidate& x, const Candidate& y) {
              const double cx = by_work ? x.cost.serial_s : x.cost.total_s;
              const double cy = by_work ? y.cost.serial_s : y.cost.total_s;
              if (cx != cy) return cx < cy;
              return key_of(x.params) < key_of(y.params);
            });
  return out;
}

}  // namespace

std::vector<Candidate> AutoTuner::rank(const TuneFeatures& f,
                                       const Config& base,
                                       std::size_t value_bytes,
                                       double products_override) const {
  return rank_impl(opts_, f, base, value_bytes, products_override,
                   /*max_candidates=*/0, /*simulate_makespan=*/true);
}

std::vector<Candidate> AutoTuner::rank_budgeted(
    const TuneFeatures& f, const Config& base, std::size_t value_bytes,
    std::size_t max_candidates, double products_override) const {
  return rank_impl(opts_, f, base, value_bytes, products_override,
                   max_candidates, /*simulate_makespan=*/false);
}

TunedParams AutoTuner::choose_budgeted(const TuneFeatures& f,
                                       const Config& base,
                                       std::size_t value_bytes,
                                       std::size_t max_candidates,
                                       double products_override) const {
  auto ranked =
      rank_budgeted(f, base, value_bytes, max_candidates, products_override);
  if (ranked.empty()) return {};
  return ranked.front().params;
}

TunedParams AutoTuner::choose(const TuneFeatures& f, const Config& base,
                              std::size_t value_bytes,
                              double products_override) const {
  auto ranked = rank(f, base, value_bytes, products_override);
  if (ranked.empty()) return {};
  return ranked.front().params;
}

std::uint64_t options_hash(const TunerOptions& opts) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= 1099511628211ull;  // FNV-1a prime
    }
  };
  mix(static_cast<std::uint64_t>(kPredictorCalibrationVersion));
  mix(static_cast<std::uint64_t>(opts.objective));
  mix(opts.tune_long_row_threshold ? 1u : 0u);
  mix(static_cast<std::uint64_t>(opts.sample_stride));
  mix(static_cast<std::uint64_t>(opts.min_samples));
  const auto mix_grid = [&](const std::vector<int>& grid) {
    mix(grid.size());
    for (int v : grid) mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  };
  mix_grid(opts.nnz_per_block);
  mix_grid(opts.retain_per_thread);
  mix_grid(opts.path_merge_max_chunks);
  return h;
}

}  // namespace acs::tune
