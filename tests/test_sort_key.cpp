#include "core/sort_key.hpp"

#include <gtest/gtest.h>

namespace acs {
namespace {

TEST(SortKey, DynamicRoundTrip) {
  const auto c = KeyCodec::make(10, 40, 1000, 5000, true, 255, 1 << 20);
  const auto key = c.encode(23, 3000);
  EXPECT_EQ(c.row_of(key), 23);
  EXPECT_EQ(c.col_of(key), 3000);
}

TEST(SortKey, DynamicBitsAreMinimal) {
  const auto c = KeyCodec::make(0, 3, 100, 115, true, 255, 1 << 20);
  EXPECT_EQ(c.row_bits(), 2);
  EXPECT_EQ(c.col_bits(), 4);
  EXPECT_EQ(c.total_bits(), 6);
}

TEST(SortKey, StaticBitsUseFullRanges) {
  const auto c = KeyCodec::make(10, 12, 100, 110, false, 255, (1 << 23) - 1);
  EXPECT_EQ(c.row_bits(), 8);
  EXPECT_EQ(c.col_bits(), 23);
  // The paper's example: 9 row bits + 23 column bits fit a 32-bit key.
  const auto paper = KeyCodec::make(0, 0, 0, 0, false, 511, (1 << 23) - 1);
  EXPECT_EQ(paper.total_bits(), 32);
}

TEST(SortKey, OrderingMatchesRowColumnOrder) {
  const auto c = KeyCodec::make(0, 7, 50, 80, true, 255, 1000);
  EXPECT_LT(c.encode(1, 80), c.encode(2, 50));  // row dominates
  EXPECT_LT(c.encode(3, 51), c.encode(3, 52));  // column within row
}

TEST(SortKey, SameRowPredicate) {
  const auto c = KeyCodec::make(0, 7, 0, 100, true, 255, 1000);
  EXPECT_TRUE(c.same_row(c.encode(4, 10), c.encode(4, 90)));
  EXPECT_FALSE(c.same_row(c.encode(4, 10), c.encode(5, 10)));
}

TEST(SortKey, SingleRowSingleColumnDegenerate) {
  const auto c = KeyCodec::make(6, 6, 42, 42, true, 255, 1000);
  EXPECT_EQ(c.total_bits(), 0);
  EXPECT_EQ(c.row_of(c.encode(6, 42)), 6);
  EXPECT_EQ(c.col_of(c.encode(6, 42)), 42);
}

TEST(SortKey, RoundTripAtRangeBounds) {
  const auto c = KeyCodec::make(3, 17, 200, 900, true, 255, 1000);
  for (index_t r : {3, 17}) {
    for (index_t col : {200, 900}) {
      const auto key = c.encode(r, col);
      EXPECT_EQ(c.row_of(key), r);
      EXPECT_EQ(c.col_of(key), col);
    }
  }
}

}  // namespace
}  // namespace acs
