#pragma once
/// \file rmerge.hpp
/// RMerge-style SpGEMM [Gremse et al. 2015]: iterative row merging. A is
/// factored into matrices whose rows have at most K entries (K = the merge
/// width the GPU can handle in fast memory); the product is then evaluated
/// right-to-left, each pass merging at most K sorted rows per output row
/// entirely in registers/scratchpad. Every pass materializes an
/// intermediate matrix in global memory — the strategy's cost on matrices
/// with long rows of A. Merge order is data-independent: bit-stable.

#include "baselines/algorithm.hpp"

namespace acs {

template <class T>
Csr<T> rmerge_multiply(const Csr<T>& a, const Csr<T>& b,
                       SpgemmStats* stats = nullptr, int merge_width = 32);

template <class T>
class RMerge final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "RMerge"; }
  [[nodiscard]] bool bit_stable() const override { return true; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return rmerge_multiply(a, b, stats);
  }
};

extern template Csr<float> rmerge_multiply(const Csr<float>&,
                                           const Csr<float>&, SpgemmStats*,
                                           int);
extern template Csr<double> rmerge_multiply(const Csr<double>&,
                                            const Csr<double>&, SpgemmStats*,
                                            int);
extern template class RMerge<float>;
extern template class RMerge<double>;

}  // namespace acs
