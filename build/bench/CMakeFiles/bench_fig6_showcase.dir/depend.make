# Empty dependencies file for bench_fig6_showcase.
# This may be replaced when dependencies are built.
