#include "core/compaction.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace acs {
namespace {

KeyCodec codec() { return KeyCodec::make(0, 15, 0, 255, true, 255, 1023); }

TEST(Compaction, CombinesEqualKeys) {
  const auto c = codec();
  std::vector<std::uint64_t> keys{c.encode(0, 1), c.encode(0, 1), c.encode(0, 2)};
  std::vector<double> vals{1.0, 2.0, 5.0};
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  ASSERT_EQ(out.keys.size(), 2u);
  EXPECT_EQ(out.vals[0], 3.0);
  EXPECT_EQ(out.vals[1], 5.0);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0], (std::pair<index_t, index_t>{0, 2}));
}

TEST(Compaction, CountsPerRow) {
  const auto c = codec();
  std::vector<std::uint64_t> keys{c.encode(0, 1), c.encode(0, 3),
                                  c.encode(2, 3), c.encode(2, 3),
                                  c.encode(5, 9)};
  std::vector<double> vals{1, 1, 1, 1, 1};
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0], (std::pair<index_t, index_t>{0, 2}));
  EXPECT_EQ(out.rows[1], (std::pair<index_t, index_t>{2, 1}));
  EXPECT_EQ(out.rows[2], (std::pair<index_t, index_t>{5, 1}));
  EXPECT_EQ(out.keys.size(), 4u);
}

TEST(Compaction, AccumulatesLeftToRight) {
  // Bit-stability depends on strictly sequential left-to-right sums within
  // an equal-key run: ((a+b)+c), never (a+(b+c)).
  const auto c = codec();
  const float a = 1e8f, b2 = 1.0f, c3 = -1e8f;
  std::vector<std::uint64_t> keys{c.encode(1, 1), c.encode(1, 1), c.encode(1, 1)};
  std::vector<float> vals{a, b2, c3};
  sim::MetricCounters m;
  const auto out = compact_sorted<float>(keys, vals, c, m);
  ASSERT_EQ(out.vals.size(), 1u);
  EXPECT_EQ(out.vals[0], ((a + b2) + c3));
}

TEST(Compaction, SingleElement) {
  const auto c = codec();
  std::vector<std::uint64_t> keys{c.encode(7, 42)};
  std::vector<double> vals{3.5};
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  ASSERT_EQ(out.keys.size(), 1u);
  EXPECT_EQ(out.vals[0], 3.5);
  EXPECT_EQ(out.rows[0], (std::pair<index_t, index_t>{7, 1}));
}

TEST(Compaction, EmptyBuffer) {
  const auto c = codec();
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(std::span<const std::uint64_t>{},
                                          std::span<const double>{}, c, m);
  EXPECT_TRUE(out.keys.empty());
  EXPECT_TRUE(out.rows.empty());
}

TEST(Compaction, AllSameKey) {
  const auto c = codec();
  std::vector<std::uint64_t> keys(100, c.encode(3, 3));
  std::vector<double> vals(100, 0.5);
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  ASSERT_EQ(out.keys.size(), 1u);
  EXPECT_EQ(out.vals[0], 50.0);
  EXPECT_EQ(out.rows[0], (std::pair<index_t, index_t>{3, 1}));
}

TEST(Compaction, AllDistinctKeys) {
  const auto c = codec();
  std::vector<std::uint64_t> keys;
  std::vector<double> vals;
  for (index_t i = 0; i < 16; ++i) {
    keys.push_back(c.encode(i, static_cast<index_t>(i)));
    vals.push_back(static_cast<double>(i));
  }
  sim::MetricCounters m;
  const auto out = compact_sorted<double>(keys, vals, c, m);
  EXPECT_EQ(out.keys.size(), 16u);
  EXPECT_EQ(out.rows.size(), 16u);
  for (const auto& [row, count] : out.rows) EXPECT_EQ(count, 1);
}

TEST(Compaction, PaperStateConstants) {
  // The initial scan states of Algorithm 3.
  EXPECT_EQ(compaction_detail::kStateEndComp, 0x00020003u);
  EXPECT_EQ(compaction_detail::kStateEndRow, 0x00030003u);
}

TEST(Compaction, ScanOperatorResetsRowCounterAcrossRows) {
  namespace cd = compaction_detail;
  const auto c = codec();
  cd::ScanElement<double> a{c.encode(0, 1), 1.0, cd::kStateEndRow};
  cd::ScanElement<double> b{c.encode(1, 1), 2.0, cd::kStateEndRow};
  const auto n = cd::combine_scan_operator(a, b, c);
  // Row counter restarted at 1; total counter accumulated to 2.
  EXPECT_EQ((n.state >> cd::kRowCountShift) & cd::kCounterMask, 1u);
  EXPECT_EQ((n.state >> cd::kTotalCountShift) & cd::kCounterMask, 2u);
  EXPECT_EQ(n.value, 2.0);
}

TEST(Compaction, ScanOperatorAccumulatesWithinRow) {
  namespace cd = compaction_detail;
  const auto c = codec();
  cd::ScanElement<double> a{c.encode(4, 1), 1.0, cd::kStateEndComp};
  cd::ScanElement<double> b{c.encode(4, 2), 2.0, cd::kStateEndRow};
  const auto n = cd::combine_scan_operator(a, b, c);
  EXPECT_EQ((n.state >> cd::kRowCountShift) & cd::kCounterMask, 2u);
  EXPECT_EQ((n.state >> cd::kTotalCountShift) & cd::kCounterMask, 2u);
  EXPECT_EQ(n.value, 2.0);  // different keys: value not combined
}

}  // namespace
}  // namespace acs
