#pragma once
/// \file arch_id.hpp
/// Runtime identifiers of the compiled-in backends. This header is the
/// bottom of the arch layer: plain enums with no dependencies, so that
/// core/config.hpp can carry an execution-kind field and the runtime can
/// key plan caches by architecture without pulling in the tag types
/// (arch.hpp) or the simulated device description.
///
/// The numeric values are part of the persistent tune-cache format
/// (runtime/tune_persist.hpp) and of serialized fingerprints — never
/// renumber an existing entry, only append.

#include <cstdint>

namespace acs::arch {

/// One compiled-in backend. Each id maps 1:1 to a tag type in arch.hpp.
enum class ArchId : std::uint32_t {
  /// The paper's evaluation device, simulated (Titan Xp: 30 SMs, 48 KiB
  /// scratchpad per block). Bit-compatible with the pre-arch pipeline and
  /// the default everywhere.
  kSimTitanXp = 0,
  /// A simulated device with twice the scratchpad (96 KiB) and more SMs;
  /// block shapes the Titan Xp must prune (e.g. nnz_per_block = 1024 with
  /// double values) are feasible here, so the tuner's grid widens.
  kSimBigDevice = 1,
  /// Native CPU execution: the same block algorithms run on the host
  /// thread pool for wall-clock throughput, with the simulated cost model
  /// switched off. Block geometry mirrors SimTitanXp, so outputs are
  /// bit-identical to the simulated backend.
  kNativeCpu = 2,
};

/// How a backend executes blocks (selected per job via `Config::exec`).
enum class ExecKind : std::uint32_t {
  /// Charge every block's work to the simulated device cost model
  /// (sim::schedule_blocks); stats report simulated kernel times.
  kSimulated = 0,
  /// Skip the device cost model entirely and use wall-clock-lean
  /// primitives; stats report zero simulated time.
  kNative = 1,
};

/// Stable lowercase name of an arch ("sim-titan-xp", "sim-big-device",
/// "native-cpu"); "?" for values outside the enum.
[[nodiscard]] const char* to_string(ArchId id);

[[nodiscard]] const char* to_string(ExecKind kind);

/// Parse a name produced by `to_string(ArchId)` back into an id. Returns
/// false (leaving `out` untouched) for unknown names.
[[nodiscard]] bool parse_arch(const char* name, ArchId& out);

}  // namespace acs::arch
